// Command cmmdump prints a procedure's Abstract C-- flow graph
// (Table 2), its SSA numbering (the Figure 6 presentation), its
// live-variable sets, or a pipeline snapshot of the IR after a named
// pass.
//
// Usage:
//
//	cmmdump [-opt] [-proc name] [-ssa|-live|-graph] file.cmm
//	cmmdump -after=opt -proc f file.cmm
package main

import (
	"flag"
	"fmt"
	"os"

	"cmm"
)

var (
	proc    = flag.String("proc", "", "procedure to dump (default: all)")
	ssa     = flag.Bool("ssa", false, "print the SSA numbering (Figure 6)")
	live    = flag.Bool("live", false, "print live-variable sets")
	graph   = flag.Bool("graph", true, "print the flow graph (Table 2 nodes)")
	doOpt   = flag.Bool("opt", false, "run the optimizer first")
	m3pol   = flag.String("minim3", "", "treat input as MiniM3 and compile under policy: cutting, unwinding, native")
	emitCmm = flag.Bool("emit-cmm", false, "with -minim3: print the generated C-- source")
	after   = flag.String("after", "", "print the pipeline snapshot of the IR after this pass (see cmmc -passes)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmmdump [flags] file.cmm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(data)
	if *m3pol != "" {
		var policy cmm.ExceptionPolicy
		switch *m3pol {
		case "cutting":
			policy = cmm.StackCutting
		case "unwinding":
			policy = cmm.RuntimeUnwinding
		case "native":
			policy = cmm.NativeUnwinding
		default:
			fatal(fmt.Errorf("unknown policy %q", *m3pol))
		}
		src, err = cmm.CompileMiniM3(src, policy)
		if err != nil {
			fatal(err)
		}
		if *emitCmm {
			fmt.Print(src)
			return
		}
	}
	lc := cmm.LoadConfig{File: flag.Arg(0), DumpProc: *proc}
	if *after != "" {
		lc.DumpAfter = []string{*after}
	}
	mod, err := cmm.LoadWith(src, lc)
	if err != nil {
		fatal(err)
	}
	if *doOpt {
		fmt.Println("optimizer:", mod.Optimize())
	}
	if *after != "" {
		// The codegen/link snapshots exist only once code is generated;
		// the Abstract C-- ones are captured as the passes run.
		if *after == "codegen" || *after == "link" {
			if _, err := mod.Native(cmm.CompileConfig{}); err != nil {
				fatal(err)
			}
		}
		procs := mod.DumpAfterProcs(*after)
		if len(procs) == 0 {
			fatal(fmt.Errorf("no snapshot after pass %q for %q (did the pass run? -opt enables opt)", *after, *proc))
		}
		for _, p := range procs {
			text, _ := mod.DumpAfter(*after, p)
			fmt.Printf("=== %s after %s ===\n%s", p, *after, text)
		}
		return
	}
	procs := mod.Procedures()
	if *proc != "" {
		procs = []string{*proc}
	}
	for _, p := range procs {
		if *graph && !*ssa && !*live {
			text, err := mod.DumpGraph(p)
			if err != nil {
				fatal(err)
			}
			fmt.Print(text)
		}
		if *ssa {
			text, err := mod.DumpSSA(p)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("=== SSA %s ===\n%s", p, text)
		}
		if *live {
			text, err := mod.DumpLiveness(p)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("=== liveness %s ===\n%s", p, text)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmmdump:", err)
	os.Exit(1)
}
