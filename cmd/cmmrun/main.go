// Command cmmrun executes a C-- source file. By default it runs the
// abstract machine of the paper's operational semantics (§5), where
// programs that "go wrong" report exactly which rule could not fire;
// with -engine=fast, -engine=ref, or -engine=native it compiles the
// program and runs it on the simulated target machine instead (the
// threaded-code engine, the reference stepper, or the host-native
// closure-chain tier — simulated costs are identical under all three).
//
// Usage:
//
//	cmmrun [flags] file.cmm
//
// Examples:
//
//	cmmrun -run sp3 -args 10 figure1.cmm
//	cmmrun -engine=fast -stats -run sp3 -args 10 figure1.cmm
//	cmmrun -engine=fast -stats=json -run sp3 -args 10 figure1.cmm
//	cmmrun -engine=native -explain -telemetry -run sp3 -args 10 figure1.cmm
//	cmmrun -engine=fast -trace=run.json -metrics=m.json -profile=p.folded \
//	    -dispatcher=unwind -run main raise.cmm
//	cmmrun -engine=fast -cpuprofile cpu.out -run f -args 1000 fig34.cmm
//
// Observability: -trace writes the event stream (Chrome Trace Event
// JSON by default — load it in chrome://tracing or Perfetto — or a
// text log with -trace-format=text); -metrics writes named counters and
// histograms as JSON; -profile writes a folded-stacks simulated-cycle
// profile for flamegraph tools. All three work under every engine;
// under interp, timestamps are abstract-machine transitions rather than
// simulated cycles.
//
// Errors are rendered as structured diagnostics (severity and the pass
// that produced them), and the exit status is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"cmm"
	"cmm/internal/diag"
)

// badFlag reports an unrecognized value for an enum-valued flag,
// always listing what the flag accepts. Every cmmrun flag with a fixed
// value set fails through this one helper so the diagnostics stay
// uniform.
func badFlag(name, got string, valid ...string) error {
	return fmt.Errorf("unknown -%s value %q (valid values: %s)", name, got, strings.Join(valid, ", "))
}

// statsValue lets -stats work both as a boolean (-stats → text) and as
// a format selector (-stats=json).
type statsValue struct {
	set    bool
	format string
}

func (v *statsValue) String() string { return v.format }

func (v *statsValue) Set(s string) error {
	switch s {
	case "true", "text", "":
		v.set, v.format = true, "text"
	case "false":
		v.set = false
	case "json":
		v.set, v.format = true, "json"
	default:
		return badFlag("stats", s, "text", "json")
	}
	return nil
}

func (v *statsValue) IsBoolFlag() bool { return true }

var (
	runProc     = flag.String("run", "main", "procedure to run")
	argList     = flag.String("args", "", "comma-separated integer arguments")
	doOpt       = flag.Bool("opt", false, "run the scalar optimizer first (same IR passes as -O 1)")
	optLevel    = flag.Int("O", 0, "optimization level: 0 baseline, 1 scalar+frame optimizations, 2 adds interprocedural pruning and return peepholes")
	steps       = flag.Bool("steps", false, "print the number of machine transitions (interp engine)")
	dispatcher  = flag.String("dispatcher", "", "front-end runtime: unwind, exnstack:<global>, or register:<global>")
	engine      = flag.String("engine", "interp", "execution engine: interp (§5 semantics), fast (threaded code), ref (reference stepper), or native (compiled closure chains)")
	stats       statsValue
	traceOut    = flag.String("trace", "", "write an execution trace to this file")
	traceFormat = flag.String("trace-format", "chrome", "trace format: chrome (Trace Event JSON) or text")
	metricsOut  = flag.String("metrics", "", "write counters and histograms as JSON to this file")
	profileOut  = flag.String("profile", "", "write a folded-stacks simulated-cycle profile to this file")
	cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile  = flag.String("memprofile", "", "write a heap profile after the run to this file")
	vet         = flag.Bool("vet", false, "run the §4 well-formedness verifier before running; verifier errors fail the load (see VERIFIER.md)")
	explain     = flag.Bool("explain", false, "print the native distiller's kernel report before running: which candidate cycles matched a closed-form kernel, and the precise rejection reason for the rest")
	telemetry   = flag.Bool("telemetry", false, "print engine-introspection counters after the run (kernel entries/iters, deopt buckets, dispatches, fusion hits; machine engines only)")
	stackPolicy = flag.String("stack", "", "activation-stack policy: contig, seg, copy, or hybrid (machine engines only); prints the policy's ledger after the run and adds the stack section to -metrics")
	contMode    = flag.String("cont", "", "continuation reuse contract: oneshot or multishot (machine engines only; violations trap deterministically)")
)

func main() {
	flag.Var(&stats, "stats", "print simulated cost counters (fast/ref engines); -stats=json for machine-readable output")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmmrun [flags] file.cmm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *traceFormat != "chrome" && *traceFormat != "text" {
		fatal("flags", badFlag("trace-format", *traceFormat, "chrome", "text"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("load", err)
	}
	mod, err := cmm.LoadWith(string(src), cmm.LoadConfig{File: flag.Arg(0), Verify: *vet})
	if err != nil {
		fatal("compile", err)
	}
	if *doOpt {
		fmt.Println("optimizer:", mod.Optimize())
	}
	if *optLevel != 0 {
		summary, err := mod.ApplyOpt(*optLevel)
		if err != nil {
			fatal("flags", err)
		}
		fmt.Printf("-O%d: %s\n", *optLevel, summary)
	}

	var observer *cmm.Observer
	if *traceOut != "" || *metricsOut != "" || *profileOut != "" {
		observer = cmm.NewObserver()
	}

	var opts []cmm.RunOption
	switch {
	case *dispatcher == "":
	case *dispatcher == "unwind":
		opts = append(opts, cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
	case strings.HasPrefix(*dispatcher, "exnstack:"):
		opts = append(opts, cmm.WithDispatcher(cmm.NewExnStackDispatcher(strings.TrimPrefix(*dispatcher, "exnstack:")))) //nolint
	case strings.HasPrefix(*dispatcher, "register:"):
		opts = append(opts, cmm.WithDispatcher(cmm.NewRegisterDispatcher(strings.TrimPrefix(*dispatcher, "register:"))))
	default:
		fatal("flags", badFlag("dispatcher", *dispatcher, "unwind", "exnstack:<global>", "register:<global>"))
	}
	if observer != nil {
		opts = append(opts, cmm.WithObserver(observer))
	}
	if *stackPolicy != "" {
		if *engine == "interp" {
			fatal("flags", fmt.Errorf("-stack needs a machine engine (fast, ref, or native); the §5 abstract machine has no activation-stack representation"))
		}
		k, err := cmm.ParseStackPolicy(*stackPolicy)
		if err != nil {
			fatal("flags", badFlag("stack", *stackPolicy, "contig", "seg", "copy", "hybrid"))
		}
		opts = append(opts, cmm.WithStackPolicy(k))
	}
	if *contMode != "" {
		if *engine == "interp" {
			fatal("flags", fmt.Errorf("-cont needs a machine engine (fast, ref, or native)"))
		}
		mode, err := cmm.ParseContMode(*contMode)
		if err != nil {
			fatal("flags", badFlag("cont", *contMode, "unchecked", "oneshot", "multishot"))
		}
		opts = append(opts, cmm.WithContMode(mode))
	}

	var args []uint64
	if *argList != "" {
		for _, part := range strings.Split(*argList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal("flags", err)
			}
			args = append(args, v)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("profile", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("profile", err)
		}
		defer pprof.StopCPUProfile()
	}

	switch *engine {
	case "interp":
		if *explain {
			// The distiller works on compiled code; compile just for the
			// report (the interp run below is unaffected).
			mach, err := mod.Native(cmm.CompileConfig{Opt: *optLevel})
			if err != nil {
				fatal("compile", err)
			}
			fmt.Print(mach.KernelReport().Format(mach.ProcAt))
		}
		in, err := mod.Interp(opts...)
		if err != nil {
			fatal("load", err)
		}
		res, err := in.Run(*runProc, args...)
		if err != nil {
			writeObservations(mod, observer)
			fatal("run", err)
		}
		fmt.Printf("%s(%v) = %v\n", *runProc, args, res)
		if *steps {
			fmt.Printf("transitions: %d\n", in.Steps())
		}
		if stats.set {
			printInterpStats(in)
		}
	case "fast", "ref", "native":
		switch *engine {
		case "ref":
			opts = append(opts, cmm.WithEngine(cmm.EngineRef))
		case "native":
			opts = append(opts, cmm.WithEngine(cmm.EngineNative))
		}
		mach, err := mod.Native(cmm.CompileConfig{Opt: *optLevel}, opts...)
		if err != nil {
			fatal("compile", err)
		}
		if *explain {
			fmt.Print(mach.KernelReport().Format(mach.ProcAt))
		}
		res, err := mach.Run(*runProc, args...)
		mach.RecordObsCounters()
		mach.RecordEngineTelemetry()
		mach.RecordStackStats()
		if err != nil {
			writeObservations(mod, observer)
			fatal("run", err)
		}
		fmt.Printf("%s(%v) = %v\n", *runProc, args, res)
		if stats.set {
			printMachineStats(mach)
		}
		if *telemetry {
			printTelemetry(mach)
		}
		if *stackPolicy != "" {
			printStackStats(mach)
		}
	default:
		fatal("flags", badFlag("engine", *engine, "interp", "fast", "ref", "native"))
	}

	writeObservations(mod, observer)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal("profile", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("profile", err)
		}
	}
}

func printMachineStats(mach *cmm.Machine) {
	s := mach.Stats()
	if stats.format == "json" {
		fmt.Printf(`{"engine":%q,"opt":%d,"cycles":%d,"instrs":%d,"loads":%d,"stores":%d,"branches":%d,"calls":%d,"yields":%d}`+"\n",
			*engine, *optLevel, s.Cycles, s.Instrs, s.Loads, s.Stores, s.Branches, s.Calls, s.Yields)
		return
	}
	fmt.Printf("cycles: %d instrs: %d loads: %d stores: %d branches: %d calls: %d yields: %d\n",
		s.Cycles, s.Instrs, s.Loads, s.Stores, s.Branches, s.Calls, s.Yields)
}

func printTelemetry(mach *cmm.Machine) {
	t := mach.Telemetry()
	fmt.Printf("telemetry[%s]: kernel entries: %d iters: %d instrs: %d | deopts cycle-exit: %d trap-edge: %d budget: %d observer: %d stack-policy: %d | dispatches: %d fusion hits: %d\n",
		mach.EngineName(), t.KernelEntries, t.KernelIters, t.KernelInstrs,
		t.DeoptCycleExit, t.DeoptTrap, t.DeoptBudget, t.DeoptObserver, t.DeoptPolicy,
		t.ChainDispatches, t.FusionHits)
}

func printStackStats(mach *cmm.Machine) {
	s := mach.StackStats()
	fmt.Printf("stack[%s]: policy-cycles: %d cuts: %d captures: %d capture-words: %d resumes: %d overflows: %d underflows: %d segments-peak: %d\n",
		mach.StackPolicyName(), s.PolicyCycles, s.Cuts, s.Captures, s.CaptureWords, s.Resumes,
		s.Overflows, s.Underflows, s.SegmentsPeak)
}

func printInterpStats(in *cmm.Interp) {
	if stats.format == "json" {
		fmt.Printf(`{"engine":"interp","transitions":%d}`+"\n", in.Steps())
		return
	}
	fmt.Printf("transitions: %d\n", in.Steps())
}

// writeObservations exports whatever the observer collected, even when
// the run itself failed: a trace of a failing run is exactly what the
// flags are for.
func writeObservations(mod *cmm.Module, o *cmm.Observer) {
	if o == nil {
		return
	}
	if *traceOut != "" {
		mod.ObserveCompile(o) // put compile passes on the same timeline
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("trace", err)
		}
		defer f.Close()
		if *traceFormat == "text" {
			err = o.WriteTextTrace(f)
		} else {
			err = o.WriteChromeTrace(f)
		}
		if err != nil {
			fatal("trace", err)
		}
	}
	if *metricsOut != "" {
		data, err := o.Metrics().JSON()
		if err != nil {
			fatal("metrics", err)
		}
		if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
			fatal("metrics", err)
		}
	}
	if *profileOut != "" {
		if err := os.WriteFile(*profileOut, []byte(o.Profile().Folded()), 0o644); err != nil {
			fatal("profile", err)
		}
	}
}

// fatal renders err through the structured-diagnostic renderer — the
// same severity/pass format the compiler uses — and exits non-zero.
func fatal(pass string, err error) {
	fmt.Fprintln(os.Stderr, diag.AsList(err, pass).String())
	os.Exit(1)
}
