// Command cmmrun executes a C-- source file on the abstract machine of
// the paper's operational semantics (§5). Programs that "go wrong"
// report exactly which rule could not fire.
//
// Usage:
//
//	cmmrun [flags] file.cmm
//
// Example:
//
//	cmmrun -run sp3 -args 10 figure1.cmm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cmm"
)

var (
	runProc    = flag.String("run", "main", "procedure to run")
	argList    = flag.String("args", "", "comma-separated integer arguments")
	doOpt      = flag.Bool("opt", false, "run the optimizer first")
	steps      = flag.Bool("steps", false, "print the number of machine transitions")
	dispatcher = flag.String("dispatcher", "", "front-end runtime: unwind, exnstack:<global>, or register:<global>")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmmrun [flags] file.cmm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := cmm.Load(string(src))
	if err != nil {
		fatal(err)
	}
	if *doOpt {
		fmt.Println("optimizer:", mod.Optimize())
	}
	var opts []cmm.RunOption
	switch {
	case *dispatcher == "":
	case *dispatcher == "unwind":
		opts = append(opts, cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
	case strings.HasPrefix(*dispatcher, "exnstack:"):
		opts = append(opts, cmm.WithDispatcher(cmm.NewExnStackDispatcher(strings.TrimPrefix(*dispatcher, "exnstack:")))) //nolint
	case strings.HasPrefix(*dispatcher, "register:"):
		opts = append(opts, cmm.WithDispatcher(cmm.NewRegisterDispatcher(strings.TrimPrefix(*dispatcher, "register:"))))
	default:
		fatal(fmt.Errorf("unknown dispatcher %q", *dispatcher))
	}
	in, err := mod.Interp(opts...)
	if err != nil {
		fatal(err)
	}
	var args []uint64
	if *argList != "" {
		for _, part := range strings.Split(*argList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(err)
			}
			args = append(args, v)
		}
	}
	res, err := in.Run(*runProc, args...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s(%v) = %v\n", *runProc, args, res)
	if *steps {
		fmt.Printf("transitions: %d\n", in.Steps())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmmrun:", err)
	os.Exit(1)
}
