// Command cmmrun executes a C-- source file. By default it runs the
// abstract machine of the paper's operational semantics (§5), where
// programs that "go wrong" report exactly which rule could not fire;
// with -engine=fast or -engine=ref it compiles the program and runs it
// on the simulated target machine instead (the threaded-code engine or
// the reference stepper — simulated costs are identical under both).
//
// Usage:
//
//	cmmrun [flags] file.cmm
//
// Examples:
//
//	cmmrun -run sp3 -args 10 figure1.cmm
//	cmmrun -engine=fast -stats -run sp3 -args 10 figure1.cmm
//	cmmrun -engine=fast -cpuprofile cpu.out -run f -args 1000 fig34.cmm
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"cmm"
)

var (
	runProc    = flag.String("run", "main", "procedure to run")
	argList    = flag.String("args", "", "comma-separated integer arguments")
	doOpt      = flag.Bool("opt", false, "run the optimizer first")
	steps      = flag.Bool("steps", false, "print the number of machine transitions (interp engine)")
	dispatcher = flag.String("dispatcher", "", "front-end runtime: unwind, exnstack:<global>, or register:<global>")
	engine     = flag.String("engine", "interp", "execution engine: interp (§5 semantics), fast (threaded code), or ref (reference stepper)")
	stats      = flag.Bool("stats", false, "print simulated cost counters (fast/ref engines)")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile after the run to this file")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmmrun [flags] file.cmm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := cmm.Load(string(src))
	if err != nil {
		fatal(err)
	}
	if *doOpt {
		fmt.Println("optimizer:", mod.Optimize())
	}
	var opts []cmm.RunOption
	switch {
	case *dispatcher == "":
	case *dispatcher == "unwind":
		opts = append(opts, cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
	case strings.HasPrefix(*dispatcher, "exnstack:"):
		opts = append(opts, cmm.WithDispatcher(cmm.NewExnStackDispatcher(strings.TrimPrefix(*dispatcher, "exnstack:")))) //nolint
	case strings.HasPrefix(*dispatcher, "register:"):
		opts = append(opts, cmm.WithDispatcher(cmm.NewRegisterDispatcher(strings.TrimPrefix(*dispatcher, "register:"))))
	default:
		fatal(fmt.Errorf("unknown dispatcher %q", *dispatcher))
	}

	var args []uint64
	if *argList != "" {
		for _, part := range strings.Split(*argList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(err)
			}
			args = append(args, v)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	switch *engine {
	case "interp":
		in, err := mod.Interp(opts...)
		if err != nil {
			fatal(err)
		}
		res, err := in.Run(*runProc, args...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s(%v) = %v\n", *runProc, args, res)
		if *steps {
			fmt.Printf("transitions: %d\n", in.Steps())
		}
	case "fast", "ref":
		if *engine == "ref" {
			opts = append(opts, cmm.WithEngine(cmm.EngineRef))
		}
		mach, err := mod.Native(cmm.CompileConfig{}, opts...)
		if err != nil {
			fatal(err)
		}
		res, err := mach.Run(*runProc, args...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s(%v) = %v\n", *runProc, args, res)
		if *stats {
			s := mach.Stats()
			fmt.Printf("cycles: %d instrs: %d loads: %d stores: %d branches: %d calls: %d yields: %d\n",
				s.Cycles, s.Instrs, s.Loads, s.Stores, s.Branches, s.Calls, s.Yields)
		}
	default:
		fatal(fmt.Errorf("unknown engine %q (want interp, fast, or ref)", *engine))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmmrun:", err)
	os.Exit(1)
}
