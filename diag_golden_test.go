package cmm_test

import (
	"strings"
	"testing"

	"cmm"
)

// asDiagnostics extracts the structured list from a Load error.
func asDiagnostics(t *testing.T, err error) cmm.Diagnostics {
	t.Helper()
	if err == nil {
		t.Fatal("expected a compile error")
	}
	switch e := err.(type) {
	case cmm.Diagnostics:
		return e
	case *cmm.Diagnostic:
		return cmm.Diagnostics{e}
	}
	t.Fatalf("error is %T, not structured diagnostics: %v", err, err)
	return nil
}

// golden asserts the full structured rendering — span, severity, pass,
// message — of the first diagnostic.
func golden(t *testing.T, ds cmm.Diagnostics, want string) {
	t.Helper()
	if len(ds) == 0 {
		t.Fatal("no diagnostics")
	}
	if got := ds[0].String(); got != want {
		t.Errorf("diagnostic mismatch\n got: %s\nwant: %s", got, want)
	}
}

// TestGoldenParseDiagnostic: a syntax error carries file:line:col and
// pass "parse".
func TestGoldenParseDiagnostic(t *testing.T) {
	src := "f (bits32 x) {\n    x = ;\n}\n"
	_, err := cmm.LoadWith(src, cmm.LoadConfig{File: "bad.cmm"})
	ds := asDiagnostics(t, err)
	golden(t, ds, `bad.cmm:2:9: error: [parse] expected expression, found ;`)
}

// TestGoldenContinuationScopeDiagnostic pins the §4.1 scope rule: an
// also-annotation may only name a continuation declared in the same
// procedure as the call site.
func TestGoldenContinuationScopeDiagnostic(t *testing.T) {
	src := `g () { return; }
f (bits32 x) {
    g() also cuts to k;
    return;
}
`
	_, err := cmm.LoadWith(src, cmm.LoadConfig{File: "scope.cmm"})
	ds := asDiagnostics(t, err)
	golden(t, ds, `scope.cmm:3:5: error: [check] annotation names k, which is not a continuation declared in this procedure`)
}

// TestGoldenArityDiagnostic pins the alternate-return arity rule: in
// return <m/n>, the index may not exceed the count of "also returns to"
// continuations.
func TestGoldenArityDiagnostic(t *testing.T) {
	src := "f (bits32 x) {\n    return <3/2> ();\n}\n"
	_, err := cmm.LoadWith(src, cmm.LoadConfig{File: "arity.cmm"})
	ds := asDiagnostics(t, err)
	golden(t, ds, `arity.cmm:2:5: error: [parse] return <3/2>: index exceeds continuation count`)
}

// TestGoldenMiniM3Diagnostics: front-end errors carry the m3-* pass that
// rejected the program, with line provenance.
func TestGoldenMiniM3Diagnostics(t *testing.T) {
	t.Run("parse", func(t *testing.T) {
		_, err := cmm.LoadMiniM3With("proc f( {", cmm.StackCutting, cmm.LoadConfig{File: "bad.mm"})
		ds := asDiagnostics(t, err)
		if d := ds[0]; d.Pass != "m3-parse" || d.File != "bad.mm" || d.Line == 0 {
			t.Errorf("want m3-parse diagnostic with position in bad.mm, got %s", d)
		}
	})
	t.Run("check", func(t *testing.T) {
		src := "proc f(x) {\n    return g(x);\n}\n"
		_, err := cmm.LoadMiniM3With(src, cmm.StackCutting, cmm.LoadConfig{File: "undef.mm"})
		ds := asDiagnostics(t, err)
		golden(t, ds, `undef.mm:2:0: error: [m3-check] proc f: call to undefined procedure g`)
	})
	t.Run("infer-note", func(t *testing.T) {
		src := "proc pure(x) {\n    return x + 1;\n}\n"
		mod, err := cmm.LoadMiniM3With(src, cmm.StackCutting, cmm.LoadConfig{File: "pure.mm"})
		if err != nil {
			t.Fatal(err)
		}
		notes := mod.Diagnostics().ByPass("m3-infer")
		if len(notes) != 1 {
			t.Fatalf("want one m3-infer note, got %v", mod.Diagnostics())
		}
		if got := notes[0].String(); got != `pure.mm:1:0: note: [m3-infer] procedure pure cannot raise; exceptional annotations pruned` {
			t.Errorf("note mismatch: %s", got)
		}
	})
}

// TestDiagnosticsPassProvenance: every diagnostic a failing load
// produces names the pass that created it, and the names are drawn from
// the declared pass list (plus the m3-* front-end stages).
func TestDiagnosticsPassProvenance(t *testing.T) {
	known := map[string]bool{"m3-parse": true, "m3-check": true, "m3-infer": true, "m3-emit": true}
	for _, name := range cmm.PassNames() {
		known[name] = true
	}
	for _, src := range []string{
		"f() {",
		"f() { return (nope); }",
		"f() { bits32 x; x = 1 +; return; }",
	} {
		_, err := cmm.Load(src)
		ds := asDiagnostics(t, err)
		for _, d := range ds {
			if !known[d.Pass] {
				t.Errorf("diagnostic %q has unknown pass %q", d, d.Pass)
			}
		}
	}
	if !strings.Contains(asDiagnostics(t, func() error { _, err := cmm.Load("f() {"); return err }()).String(), "[parse]") {
		t.Error("parse failure not attributed to the parse pass")
	}
}
