package cmm_test

import (
	"strings"
	"testing"

	"cmm"
)

const figure1 = `
export sp1;
sp1(bits32 n) {
    bits32 s, p;
    if n == 1 {
        return (1, 1);
    } else {
        s, p = sp1(n-1);
        return (s+n, p*n);
    }
}
`

func TestLoadAndInterp(t *testing.T) {
	mod, err := cmm.Load(figure1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := mod.Interp()
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run("sp1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 55 || res[1] != 3628800 {
		t.Errorf("sp1(10) = %v", res)
	}
	if in.Steps() == 0 {
		t.Error("no steps recorded")
	}
}

func TestLoadAndNative(t *testing.T) {
	mod, err := cmm.Load(figure1)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := mod.Native(cmm.CompileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run("sp1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 55 || res[1] != 3628800 {
		t.Errorf("sp1(10) = %v", res)
	}
	if mach.Stats().Cycles == 0 {
		t.Error("no cycles counted")
	}
	if mach.CodeSize("sp1") == 0 {
		t.Error("no code size")
	}
	text, err := mach.Disassemble("sp1")
	if err != nil || !strings.Contains(text, "call") {
		t.Errorf("disassembly: %v\n%s", err, text)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := cmm.Load("f() {"); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := cmm.Load("f() { return (nope); }"); err == nil {
		t.Error("check error not reported")
	}
}

func TestOptimizeFacade(t *testing.T) {
	mod, err := cmm.Load(`f() { bits32 x; x = 2 + 3; return (x * 2); }`)
	if err != nil {
		t.Fatal(err)
	}
	stats := mod.Optimize()
	if stats.ConstantsFolded == 0 {
		t.Errorf("nothing folded: %s", stats)
	}
	in, _ := mod.Interp()
	res, err := in.Run("f")
	if err != nil || res[0] != 10 {
		t.Errorf("f() = %v (%v)", res, err)
	}
}

func TestDumps(t *testing.T) {
	mod, err := cmm.Load(figure1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mod.DumpGraph("sp1")
	if err != nil || !strings.Contains(g, "Entry") {
		t.Errorf("graph: %v\n%s", err, g)
	}
	s, err := mod.DumpSSA("sp1")
	if err != nil || s == "" {
		t.Errorf("ssa: %v", err)
	}
	l, err := mod.DumpLiveness("sp1")
	if err != nil || l == "" {
		t.Errorf("liveness: %v", err)
	}
	if _, err := mod.DumpGraph("nope"); err == nil {
		t.Error("missing proc not reported")
	}
}

func TestForeignFacade(t *testing.T) {
	mod, err := cmm.Load(`
import host;
f(bits32 x) {
    bits32 r;
    r = host(x);
    return (r);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"interp", "native"} {
		var runFn func(string, ...uint64) ([]uint64, error)
		opt := cmm.WithForeign("host", func(args []uint64) ([]uint64, error) {
			return []uint64{args[0] + 100}, nil
		})
		if target == "interp" {
			in, err := mod.Interp(opt)
			if err != nil {
				t.Fatal(err)
			}
			runFn = in.Run
		} else {
			mach, err := mod.Native(cmm.CompileConfig{}, opt)
			if err != nil {
				t.Fatal(err)
			}
			runFn = mach.Run
		}
		res, err := runFn("f", 1)
		if err != nil || res[0] != 101 {
			t.Errorf("%s: f(1) = %v (%v)", target, res, err)
		}
	}
}

func TestDispatcherFacade(t *testing.T) {
	src := `
section "data" {
    desc: bits32 1,  7, 0, 1;
}
f() {
    bits32 r;
    r = g() also unwinds to k also aborts descriptors(desc);
    return (r);
continuation k(r):
    return (r);
}
g() {
    yield(1, 7, 42) also aborts;
    return (0);
}
`
	mod, err := cmm.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"interp", "native"} {
		var res []uint64
		if target == "interp" {
			in, err := mod.Interp(cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
			if err != nil {
				t.Fatal(err)
			}
			res, err = in.Run("f")
			if err != nil {
				t.Fatal(err)
			}
		} else {
			mach, err := mod.Native(cmm.CompileConfig{}, cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
			if err != nil {
				t.Fatal(err)
			}
			res, err = mach.Run("f")
			if err != nil {
				t.Fatal(err)
			}
		}
		if res[0] != 42 {
			t.Errorf("%s: f() = %v", target, res)
		}
	}
}

func TestMiniM3Facade(t *testing.T) {
	src := `
exception E;
proc f(x) {
    var r;
    try {
        if x == 0 { raise E(9); }
        r = x;
    } except E(v) {
        r = 100 + v;
    }
    return r;
}
`
	for _, policy := range []cmm.ExceptionPolicy{cmm.StackCutting, cmm.RuntimeUnwinding, cmm.NativeUnwinding} {
		out, err := cmm.CompileMiniM3(src, policy)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		mod, err := cmm.Load(out)
		if err != nil {
			t.Fatalf("%v: generated C-- does not load: %v", policy, err)
		}
		var opts []cmm.RunOption
		switch policy {
		case cmm.StackCutting:
			opts = append(opts, cmm.WithDispatcher(cmm.NewExnStackDispatcher("mm_exn_top")))
		case cmm.RuntimeUnwinding:
			opts = append(opts, cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
		}
		mach, err := mod.Native(cmm.CompileConfig{}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mach.Run("run_f", 0)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res[0] != 0 || res[1] != 109 {
			t.Errorf("%v: run_f(0) = (%d,%d), want (0,109)", policy, res[0], res[1])
		}
	}
}

func TestHennessyFacade(t *testing.T) {
	src := `
f(bits32 a) {
    bits32 b, c;
    b = a + 1;
    c = g(k) also cuts to k;
    return (c);
continuation k:
    return (b);
}
g(bits32 kv) {
    cut to kv() also aborts;
}
`
	sound, _ := cmm.Load(src)
	sound.Optimize()
	in, _ := sound.Interp()
	res, err := in.Run("f", 41)
	if err != nil || res[0] != 42 {
		t.Errorf("sound: %v (%v)", res, err)
	}

	unsound, _ := cmm.Load(src)
	unsound.OptimizeUnsoundWithoutExceptionEdges()
	in2, _ := unsound.Interp()
	if _, err := in2.Run("f", 41); err == nil {
		t.Error("unsound optimization should break the handler")
	}
}
