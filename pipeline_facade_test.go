package cmm_test

import (
	"strings"
	"testing"

	"cmm"
	"cmm/internal/progen"
)

// TestOptimizeIdempotent: Optimize drives every procedure to a fixpoint,
// so a second run finds nothing — all-zero stats — and leaves behavior
// unchanged. Checked on a hand-written program and on a sweep of random
// ones.
func TestOptimizeIdempotent(t *testing.T) {
	srcs := []string{
		`f() { bits32 x, y; x = 2 + 3; y = x; return (y * 2); }`,
		figure1,
	}
	for seed := int64(0); seed < 20; seed++ {
		srcs = append(srcs, progen.Generate(seed, progen.Config{Exceptions: seed%2 == 0}))
	}
	for i, src := range srcs {
		mod, err := cmm.Load(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		mod.Optimize()
		if again := mod.Optimize(); again != (cmm.OptStats{}) {
			t.Errorf("program %d: second Optimize did work: %s", i, again)
		}
	}
}

// TestPassStatsFacade: a load records the front-end passes; Optimize and
// Native extend the record; the formatted table names every pass.
func TestPassStatsFacade(t *testing.T) {
	mod, err := cmm.Load(figure1)
	if err != nil {
		t.Fatal(err)
	}
	mod.Optimize()
	if _, err := mod.Native(cmm.CompileConfig{}); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, st := range mod.PassStats() {
		names = append(names, st.Name)
	}
	want := []string{"parse", "check", "translate", "liveness", "opt", "liveness", "codegen", "link"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("pass record = %v, want %v", names, want)
	}
	table := cmm.FormatPassStats(mod.PassStats())
	for _, name := range want {
		if !strings.Contains(table, name) {
			t.Errorf("formatted table missing pass %s:\n%s", name, table)
		}
	}
	if !strings.Contains(table, "total") {
		t.Errorf("formatted table missing total:\n%s", table)
	}
}

// TestDumpAfterFacade: LoadConfig.DumpAfter snapshots survive to the
// Module surface, and unknown pass names are rejected with the list of
// valid ones.
func TestDumpAfterFacade(t *testing.T) {
	mod, err := cmm.LoadWith(figure1, cmm.LoadConfig{DumpAfter: []string{"translate", "opt"}})
	if err != nil {
		t.Fatal(err)
	}
	mod.Optimize()
	for _, pass := range []string{"translate", "opt"} {
		dump, ok := mod.DumpAfter(pass, "sp1")
		if !ok || !strings.Contains(dump, "graph sp1") {
			t.Errorf("no usable snapshot of sp1 after %s (ok=%v):\n%s", pass, ok, dump)
		}
	}
	_, err = cmm.LoadWith(figure1, cmm.LoadConfig{DumpAfter: []string{"bogus"}})
	if err == nil || !strings.Contains(err.Error(), "available passes") {
		t.Errorf("unknown pass not rejected with the pass list: %v", err)
	}
	for _, name := range cmm.PassNames() {
		if err != nil && !strings.Contains(err.Error(), name) {
			t.Errorf("pass list in %q missing %s", err, name)
		}
	}
}

// TestLoadMiniM3Facade: a MiniM3 load records the m3-* front-end stages
// ahead of the C-- passes and still runs under every policy.
func TestLoadMiniM3Facade(t *testing.T) {
	src := `
exception Oops;
proc main(x) {
    var r;
    try {
        if x == 0 { raise Oops(7); }
        r = x + 1;
    } except Oops(v) {
        r = v;
    }
    return r;
}
`
	for _, pol := range []cmm.ExceptionPolicy{cmm.StackCutting, cmm.RuntimeUnwinding, cmm.NativeUnwinding} {
		mod, err := cmm.LoadMiniM3(src, pol)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		var names []string
		for _, st := range mod.PassStats() {
			names = append(names, st.Name)
		}
		joined := strings.Join(names, " ")
		if !strings.HasPrefix(joined, "m3-parse m3-check m3-infer m3-emit parse check translate liveness") {
			t.Errorf("policy %v: pass record = %v", pol, names)
		}
		var opts []cmm.RunOption
		switch pol {
		case cmm.StackCutting:
			opts = append(opts, cmm.WithDispatcher(cmm.NewExnStackDispatcher("mm_exn_top")))
		case cmm.RuntimeUnwinding:
			opts = append(opts, cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
		}
		mach, err := mod.Native(cmm.CompileConfig{}, opts...)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		res, err := mach.Run("run_main", 0)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if res[0] != 0 || res[1] != 7 {
			t.Errorf("policy %v: run_main(0) = %v, want status 0 value 7", pol, res[:2])
		}
	}
}
