// Engine parity over the paper's own benchmark programs: the acceptance
// criterion for the fast and native engines is that every simulated
// figure — cycles/op, instrs/op, memory traffic — is bit-identical to
// the reference engine, so engine choice can never perturb the paper's
// numbers. Each case below is a benchmark source from bench_test.go run
// on all engines with identical inputs.
package cmm_test

import (
	"fmt"
	"testing"

	"cmm"
	"cmm/internal/minim3"
	"cmm/internal/paper"
)

func runEngineCase(t *testing.T, src string, cc cmm.CompileConfig, e cmm.Engine,
	disp func() cmm.Dispatcher, proc string, args ...uint64) ([][]uint64, cmm.Stats) {
	t.Helper()
	mod, err := cmm.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := []cmm.RunOption{cmm.WithEngine(e)}
	if disp != nil {
		opts = append(opts, cmm.WithDispatcher(disp()))
	}
	mach, err := mod.Native(cc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var results [][]uint64
	for i := 0; i < 3; i++ {
		res, err := mach.Run(proc, args...)
		if err != nil {
			t.Fatalf("%s%v on engine %d: %v", proc, args, e, err)
		}
		results = append(results, res)
	}
	return results, mach.Stats()
}

func TestBenchFiguresEngineParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		cc   cmm.CompileConfig
		disp func() cmm.Dispatcher
		proc string
		args []uint64
	}{
		{"Figure1_Sp1", paper.Figure1, cmm.CompileConfig{}, nil, "sp1", []uint64{20}},
		{"Figure1_Sp2", paper.Figure1, cmm.CompileConfig{}, nil, "sp2", []uint64{20}},
		{"Figure1_Sp3", paper.Figure1, cmm.CompileConfig{}, nil, "sp3", []uint64{20}},
		{"Figure2_CutTo", fig2CutSrc, cmm.CompileConfig{}, nil, "f", []uint64{256}},
		{"Figure2_SetCutToCont", fig2RuntimeCutSrc, cmm.CompileConfig{},
			func() cmm.Dispatcher { return cmm.NewRegisterDispatcher("handler") }, "f", []uint64{32}},
		{"Figure2_SetUnwindCont", fig2RuntimeUnwindSrc, cmm.CompileConfig{},
			func() cmm.Dispatcher { return cmm.NewUnwindDispatcher() }, "f", []uint64{32}},
		{"Figure2_ReturnMN", fig2NativeUnwindSrc, cmm.CompileConfig{}, nil, "f", []uint64{32}},
		{"Figure2_CPS", fig2CPSSrc, cmm.CompileConfig{}, nil, "f", []uint64{32}},
		{"Fig34_BranchTable", fig34Src, cmm.CompileConfig{}, nil, "f", []uint64{1000}},
		{"Fig34_TestAndBranch", fig34Src, cmm.CompileConfig{TestAndBranch: true}, nil, "f", []uint64{1000}},
		{"Setjmp_Sparc19", setjmpSrc(19), cmm.CompileConfig{NoCalleeSaves: true}, nil, "enter", []uint64{100, 0x10000}},
		{"NativeCut2", nativeCutScopeSrc, cmm.CompileConfig{NoCalleeSaves: true}, nil, "enter", []uint64{100, 0}},
		{"CalleeSaves_Used", calleeSavesSrc, cmm.CompileConfig{}, nil, "kernel", []uint64{200}},
		{"CalleeSaves_KilledByCutEdges", calleeSavesCutSrc, cmm.CompileConfig{}, nil, "kernel", []uint64{200}},
		{"Div_Fast", divSrc, cmm.CompileConfig{}, nil, "fast", []uint64{200, 3}},
		{"Div_Solid", divSrc, cmm.CompileConfig{}, nil, "solid", []uint64{200, 3}},
		{"Opt_None", optSrc, cmm.CompileConfig{}, nil, "f", []uint64{100}},
	}
	batched := []struct {
		name string
		e    cmm.Engine
	}{{"fast", cmm.EngineFast}, {"native", cmm.EngineNative}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refRes, refStats := runEngineCase(t, tc.src, tc.cc, cmm.EngineRef, tc.disp, tc.proc, tc.args...)
			for _, be := range batched {
				gotRes, gotStats := runEngineCase(t, tc.src, tc.cc, be.e, tc.disp, tc.proc, tc.args...)
				for i := range refRes {
					for j := range refRes[i] {
						if refRes[i][j] != gotRes[i][j] {
							t.Fatalf("iter %d result %d: ref %d %s %d", i, j, refRes[i][j], be.name, gotRes[i][j])
						}
					}
				}
				if refStats != gotStats {
					t.Errorf("counter mismatch:\nref:    %+v\n%s: %+v", refStats, be.name, gotStats)
				}
			}
		})
	}
}

// TestGameEngineParity runs the Modula-3 game under every exception
// policy and raise frequency on both engines: status, value, and all
// simulated counters must match, dispatcher callouts included.
func TestGameEngineParity(t *testing.T) {
	for _, policy := range minim3.Policies {
		for _, period := range []uint64{0, 13, 3} {
			t.Run(fmt.Sprintf("%v/period=%d", policy, period), func(t *testing.T) {
				run := func(e cmm.Engine) (status, value uint64, stats cmm.Stats) {
					r, err := minim3.NewRunner(gameM3, policy, minim3.BackendVM)
					if err != nil {
						t.Fatal(err)
					}
					r.SetEngine(e)
					for i := 0; i < 3; i++ {
						status, value, err = r.Call("playGame", 100, period)
						if err != nil {
							t.Fatal(err)
						}
					}
					return status, value, r.Stats()
				}
				rs, rv, rst := run(cmm.EngineRef)
				for _, e := range []cmm.Engine{cmm.EngineFast, cmm.EngineNative} {
					gs, gv, gst := run(e)
					if rs != gs || rv != gv {
						t.Errorf("result mismatch: ref (%d,%d) engine %v (%d,%d)", rs, rv, e, gs, gv)
					}
					if rst != gst {
						t.Errorf("counter mismatch:\nref:      %+v\nengine %v: %+v", rst, e, gst)
					}
				}
			})
		}
	}
}
