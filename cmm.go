// Package cmm is a Go implementation of C-- as described in
// "A Single Intermediate Language That Supports Multiple Implementations
// of Exceptions" (Ramsey & Peyton Jones, PLDI 2000).
//
// The library contains the complete pipeline of the paper:
//
//	C-- source ──Load──▶ Abstract C-- (Table 2 flow graphs)
//	    │                     │
//	    │                Optimize (§6: standard dataflow, no special
//	    │                     │    cases for exceptions)
//	    │                     ├──Interp──▶ the §5 operational semantics
//	    │                     └──Native──▶ compiled code on a simulated
//	    │                                  target machine with callee-
//	    │                                  saves registers, branch-table
//	    │                                  returns, and cuttable stacks
//	    │
//	MiniM3 (a Modula-3-flavoured source language) compiles to C-- under
//	three exception policies: stack cutting, run-time unwinding, and
//	native-code unwinding via alternate returns.
//
// Both execution targets implement the C-- run-time interface of
// Table 1 (FirstActivation, NextActivation, SetActivation,
// SetUnwindCont, SetCutToCont, FindContParam, GetDescriptor, Resume), so
// a front-end run-time system — such as the exception dispatchers in
// this package — runs unchanged on either.
package cmm

import (
	"fmt"

	"cmm/internal/dataflow"
	"cmm/internal/diag"
	"cmm/internal/minim3"
	"cmm/internal/opt"
	"cmm/internal/pipeline"
)

// Module is a checked and translated C-- compilation unit: one Abstract
// C-- graph per procedure plus the static data it runs against. Every
// module is backed by a pipeline session — a declared, ordered list of
// named passes — so per-pass timings (PassStats), structured
// diagnostics (Diagnostics), and IR snapshots (DumpAfter) are available
// for any load.
type Module struct {
	sess *pipeline.Session
}

// PassStat records one pass execution: wall time, procedures visited,
// and IR size before/after (flow-graph nodes for Abstract C-- passes,
// machine instructions for codegen and link).
type PassStat = pipeline.PassStat

// Diagnostic is a structured compiler message: severity, source span
// (file:line:col), and the pass that produced it.
type Diagnostic = diag.Diagnostic

// Diagnostics is an ordered list of compiler messages.
type Diagnostics = diag.List

// LoadConfig configures Load beyond the defaults.
type LoadConfig struct {
	// File names the source in diagnostics.
	File string
	// Workers bounds procedure-level parallelism in per-procedure
	// passes; 0 means NumCPU, 1 forces serial. Output is byte-identical
	// for every value.
	Workers int
	// DumpAfter lists pass names (see PassNames) whose IR should be
	// snapshotted; retrieve with Module.DumpAfter.
	DumpAfter []string
	// DumpProc restricts snapshots to one procedure (empty: all).
	DumpProc string
	// Verify runs the §4 well-formedness verifier during the load:
	// verifier errors fail the load, verifier warnings appear in
	// Module.Diagnostics (pass "verify"). See VERIFIER.md.
	Verify bool
	// VerifyStrict additionally flags provably useless annotations.
	VerifyStrict bool
}

// Load parses, checks, and translates C-- source into Abstract C--.
func Load(src string) (*Module, error) {
	return LoadWith(src, LoadConfig{})
}

// LoadWith is Load with configuration.
func LoadWith(src string, lc LoadConfig) (*Module, error) {
	pc := pipeline.Config{File: lc.File, Workers: lc.Workers, DumpAfter: lc.DumpAfter, DumpProc: lc.DumpProc,
		Verify: lc.Verify, VerifyStrict: lc.VerifyStrict}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	sess := pipeline.New(src, pc)
	if err := sess.Frontend(); err != nil {
		return nil, err
	}
	return &Module{sess: sess}, nil
}

// LoadMiniM3 compiles MiniM3 source to C-- under the given policy and
// loads the result, recording the front-end stages (m3-parse, m3-check,
// m3-infer when pruning, m3-emit) in the module's pass stats.
func LoadMiniM3(src string, policy ExceptionPolicy) (*Module, error) {
	return LoadMiniM3With(src, policy, LoadConfig{})
}

// LoadMiniM3With is LoadMiniM3 with configuration.
func LoadMiniM3With(src string, policy ExceptionPolicy, lc LoadConfig) (*Module, error) {
	pc := pipeline.Config{File: lc.File, Workers: lc.Workers, DumpAfter: lc.DumpAfter, DumpProc: lc.DumpProc,
		Verify: lc.Verify, VerifyStrict: lc.VerifyStrict}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	sess, err := minim3.NewSession(src, policy, minim3.CompileOptions{Prune: true}, pc)
	if err != nil {
		return nil, err
	}
	if err := sess.Frontend(); err != nil {
		return nil, err
	}
	return &Module{sess: sess}, nil
}

// PassNames lists the back-end pass names valid for LoadConfig.DumpAfter.
func PassNames() []string { return pipeline.PassNames() }

// PassStats reports wall time and IR-size deltas for every pass that has
// run so far, in execution order.
func (m *Module) PassStats() []PassStat { return m.sess.Stats() }

// FormatPassStats renders a stats table (the cmmc -timings output).
func FormatPassStats(stats []PassStat) string { return pipeline.FormatStats(stats) }

// Diagnostics returns every structured message the passes produced,
// notes included.
func (m *Module) Diagnostics() Diagnostics { return m.sess.Diagnostics() }

// Verify runs the §4 well-formedness verifier (see VERIFIER.md) over
// the module and returns its findings — errors for conditions that make
// a run-time trap reachable, warnings for imprecision — without failing
// the module. strict additionally flags provably useless annotations.
func (m *Module) Verify(strict bool) Diagnostics {
	ds, _ := m.sess.Verify(strict) // Frontend already ran in Load; no error possible
	return ds
}

// Verify loads C-- source and reports the §4 well-formedness verifier's
// findings. The error is non-nil when the source does not load (parse,
// check, or translate failure); verifier findings — including errors —
// are returned in the list.
func Verify(src string) (Diagnostics, error) {
	m, err := Load(src)
	if err != nil {
		return nil, err
	}
	return m.Verify(false), nil
}

// ObserveCompile feeds the module's per-pass timings into an observer as
// compile spans, so the compile pipeline and the simulated run land on
// one Chrome-trace timeline (the trace shows compile passes on one
// track and the simulated machine on another).
func (m *Module) ObserveCompile(o *Observer) { m.sess.ObserveInto(o) }

// DumpAfter returns the snapshot of proc captured after the named pass,
// if LoadConfig.DumpAfter requested it.
func (m *Module) DumpAfter(pass, proc string) (string, bool) { return m.sess.Snapshot(pass, proc) }

// DumpAfterProcs lists the procedures snapshotted after the named pass.
func (m *Module) DumpAfterProcs(pass string) []string { return m.sess.SnapshotProcs(pass) }

// Source returns the C-- source backing the module (for MiniM3 loads,
// the generated C--).
func (m *Module) Source() string { return m.sess.Source() }

// Procedures lists the module's procedures in source order (synthesized
// slow-but-solid primitives last).
func (m *Module) Procedures() []string {
	return append([]string{}, m.sess.Program().Order...)
}

// OptStats reports what the optimizer did.
type OptStats struct {
	ConstantsFolded  int
	CopiesPropagated int
	AssignsRemoved   int
	BranchesResolved int
	CSEHits          int
}

func (s OptStats) String() string {
	return fmt.Sprintf("folded %d constants, propagated %d copies, removed %d dead assignments, resolved %d branches, %d CSE hits",
		s.ConstantsFolded, s.CopiesPropagated, s.AssignsRemoved, s.BranchesResolved, s.CSEHits)
}

// Optimize runs the §6 optimizer — constant propagation and folding,
// copy propagation, dead-code elimination, branch resolution, local
// CSE — over every procedure. Exceptional control flow needs no special
// treatment: the also-annotations appear as ordinary flow edges.
// Optimize is idempotent: it drives every procedure to a fixpoint, so a
// second call finds nothing left to do and reports all-zero stats.
func (m *Module) Optimize() OptStats {
	return m.optimize(opt.Options{})
}

// OptimizeUnsoundWithoutExceptionEdges runs the same passes with the
// unwind and cut edges hidden from every analysis. It exists ONLY to
// reproduce the classic miscompilation (Hennessy 1981) that the paper's
// annotations prevent; never use it to run real programs.
func (m *Module) OptimizeUnsoundWithoutExceptionEdges() OptStats {
	return m.optimize(opt.Options{WithoutExceptionEdges: true})
}

// InterprocStats reports what the summary-driven interprocedural pass
// did: how many call sites it proved quiet, which annotation edges it
// removed there, and how many continuation bindings became unreferenced
// and were dropped.
type InterprocStats struct {
	SitesQuieted       int
	CutEdgesRemoved    int
	UnwindEdgesRemoved int
	AbortsRemoved      int
	ContsRemoved       int
}

func (s InterprocStats) String() string {
	return fmt.Sprintf("quieted %d call sites (removed %d cut edges, %d unwind edges, %d aborts), dropped %d continuations",
		s.SitesQuieted, s.CutEdgesRemoved, s.UnwindEdgesRemoved, s.AbortsRemoved, s.ContsRemoved)
}

// OptimizeInterproc runs the summary-driven interprocedural pass: call
// sites whose callee provably neither cuts nor yields lose their "also
// cuts to"/"also unwinds to"/"also aborts" annotations, and
// continuations nothing references afterwards are dropped. It preserves
// observable behaviour for every engine and dispatcher; run it before
// Optimize so the scalar passes see the pruned edges.
func (m *Module) OptimizeInterproc() InterprocStats {
	r, _ := m.sess.Interproc() // Frontend already ran in Load; no error possible
	return InterprocStats{
		SitesQuieted:       r.SitesQuieted,
		CutEdgesRemoved:    r.CutEdges,
		UnwindEdgesRemoved: r.UnwindEdges,
		AbortsRemoved:      r.Aborts,
		ContsRemoved:       r.ContsRemoved,
	}
}

// ApplyOpt runs the IR-level optimization stack for the -O levels and
// returns a printable summary. Level 0 does nothing. Level 1 runs the
// scalar optimizer (Optimize). Level 2 first runs the interprocedural
// pass (OptimizeInterproc), then the scalar optimizer over the pruned
// graphs. Pair it with CompileConfig.Opt, which enables the codegen-side
// optimizations of the same levels.
func (m *Module) ApplyOpt(level int) (string, error) {
	switch level {
	case 0:
		return "", nil
	case 1:
		return m.Optimize().String(), nil
	case 2:
		ip := m.OptimizeInterproc()
		sc := m.Optimize()
		return fmt.Sprintf("interproc: %s; opt: %s", ip, sc), nil
	}
	return "", fmt.Errorf("unknown optimization level -O%d (want 0, 1, or 2)", level)
}

func (m *Module) optimize(o opt.Options) OptStats {
	r, _ := m.sess.OptimizeWith(o) // Frontend already ran in Load; no error possible
	return OptStats{
		ConstantsFolded:  r.ConstantsFolded,
		CopiesPropagated: r.CopiesPropagated,
		AssignsRemoved:   r.AssignsRemoved,
		BranchesResolved: r.BranchesResolved,
		CSEHits:          r.CSEHits,
	}
}

// DumpGraph renders a procedure's Abstract C-- flow graph (Table 2).
func (m *Module) DumpGraph(proc string) (string, error) {
	g := m.sess.Program().Graph(proc)
	if g == nil {
		return "", fmt.Errorf("no procedure %s", proc)
	}
	return g.String(), nil
}

// DumpSSA renders the Figure 6 presentation of a procedure: its SSA
// numbering over the Table 3 dataflow.
func (m *Module) DumpSSA(proc string) (string, error) {
	g := m.sess.Program().Graph(proc)
	if g == nil {
		return "", fmt.Errorf("no procedure %s", proc)
	}
	s := dataflow.BuildSSA(g)
	if err := s.Verify(); err != nil {
		return "", err
	}
	return s.String(), nil
}

// DumpLiveness renders per-node live-variable sets.
func (m *Module) DumpLiveness(proc string) (string, error) {
	g := m.sess.Program().Graph(proc)
	if g == nil {
		return "", fmt.Errorf("no procedure %s", proc)
	}
	lv, err := m.sess.Liveness(proc)
	if err != nil {
		return "", err
	}
	out := ""
	for i, n := range g.Nodes() {
		out += fmt.Sprintf("n%d %s: in=%v out=%v\n", i, n.Kind, setList(lv.In[n]), setList(lv.Out[n]))
	}
	return out, nil
}

func setList(s map[string]bool) []string {
	var out []string
	for v := range s {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ExceptionPolicy selects how the MiniM3 front end implements
// exceptions (§2's design space).
type ExceptionPolicy = minim3.Policy

// The MiniM3 exception policies.
const (
	// StackCutting: handler continuations on a dynamic exception stack;
	// RAISE pops and cuts (Appendix A.2, Figure 10).
	StackCutting = minim3.PolicyCutting
	// RuntimeUnwinding: descriptors plus a run-time stack walk
	// (Appendix A.1, Figures 8/9). Zero normal-case overhead.
	RuntimeUnwinding = minim3.PolicyUnwinding
	// NativeUnwinding: compiled unwinding via alternate returns and the
	// branch-table method (§4.2, Figures 3/4).
	NativeUnwinding = minim3.PolicyNativeUnwind
)

// CompileMiniM3 compiles MiniM3 source to C-- under the given policy.
// For every procedure P the result exports a wrapper run_P returning
// (status, value): status 0 on normal return, or the escaped exception's
// tag with its argument.
func CompileMiniM3(src string, policy ExceptionPolicy) (string, error) {
	return minim3.Compile(src, policy)
}
