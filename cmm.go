// Package cmm is a Go implementation of C-- as described in
// "A Single Intermediate Language That Supports Multiple Implementations
// of Exceptions" (Ramsey & Peyton Jones, PLDI 2000).
//
// The library contains the complete pipeline of the paper:
//
//	C-- source ──Load──▶ Abstract C-- (Table 2 flow graphs)
//	    │                     │
//	    │                Optimize (§6: standard dataflow, no special
//	    │                     │    cases for exceptions)
//	    │                     ├──Interp──▶ the §5 operational semantics
//	    │                     └──Native──▶ compiled code on a simulated
//	    │                                  target machine with callee-
//	    │                                  saves registers, branch-table
//	    │                                  returns, and cuttable stacks
//	    │
//	MiniM3 (a Modula-3-flavoured source language) compiles to C-- under
//	three exception policies: stack cutting, run-time unwinding, and
//	native-code unwinding via alternate returns.
//
// Both execution targets implement the C-- run-time interface of
// Table 1 (FirstActivation, NextActivation, SetActivation,
// SetUnwindCont, SetCutToCont, FindContParam, GetDescriptor, Resume), so
// a front-end run-time system — such as the exception dispatchers in
// this package — runs unchanged on either.
package cmm

import (
	"fmt"

	"cmm/internal/cfg"
	"cmm/internal/check"
	"cmm/internal/dataflow"
	"cmm/internal/minim3"
	"cmm/internal/opt"
	"cmm/internal/syntax"
)

// Module is a checked and translated C-- compilation unit: one Abstract
// C-- graph per procedure plus the static data it runs against.
type Module struct {
	prog *cfg.Program
	info *check.Info
}

// Load parses, checks, and translates C-- source into Abstract C--.
func Load(src string) (*Module, error) {
	parsed, err := syntax.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := check.Check(parsed)
	if err != nil {
		return nil, err
	}
	prog, err := cfg.Build(parsed, info)
	if err != nil {
		return nil, err
	}
	return &Module{prog: prog, info: info}, nil
}

// Procedures lists the module's procedures in source order (synthesized
// slow-but-solid primitives last).
func (m *Module) Procedures() []string {
	return append([]string{}, m.prog.Order...)
}

// OptStats reports what the optimizer did.
type OptStats struct {
	ConstantsFolded  int
	CopiesPropagated int
	AssignsRemoved   int
	BranchesResolved int
	CSEHits          int
}

func (s OptStats) String() string {
	return fmt.Sprintf("folded %d constants, propagated %d copies, removed %d dead assignments, resolved %d branches, %d CSE hits",
		s.ConstantsFolded, s.CopiesPropagated, s.AssignsRemoved, s.BranchesResolved, s.CSEHits)
}

// Optimize runs the §6 optimizer — constant propagation and folding,
// copy propagation, dead-code elimination, branch resolution, local
// CSE — over every procedure. Exceptional control flow needs no special
// treatment: the also-annotations appear as ordinary flow edges.
func (m *Module) Optimize() OptStats {
	return m.optimize(opt.Options{})
}

// OptimizeUnsoundWithoutExceptionEdges runs the same passes with the
// unwind and cut edges hidden from every analysis. It exists ONLY to
// reproduce the classic miscompilation (Hennessy 1981) that the paper's
// annotations prevent; never use it to run real programs.
func (m *Module) OptimizeUnsoundWithoutExceptionEdges() OptStats {
	return m.optimize(opt.Options{WithoutExceptionEdges: true})
}

func (m *Module) optimize(o opt.Options) OptStats {
	var total OptStats
	for _, name := range m.prog.Order {
		r := opt.Optimize(m.prog.Graphs[name], m.info, o)
		total.ConstantsFolded += r.ConstantsFolded
		total.CopiesPropagated += r.CopiesPropagated
		total.AssignsRemoved += r.AssignsRemoved
		total.BranchesResolved += r.BranchesResolved
		total.CSEHits += r.CSEHits
	}
	return total
}

// DumpGraph renders a procedure's Abstract C-- flow graph (Table 2).
func (m *Module) DumpGraph(proc string) (string, error) {
	g := m.prog.Graph(proc)
	if g == nil {
		return "", fmt.Errorf("no procedure %s", proc)
	}
	return g.String(), nil
}

// DumpSSA renders the Figure 6 presentation of a procedure: its SSA
// numbering over the Table 3 dataflow.
func (m *Module) DumpSSA(proc string) (string, error) {
	g := m.prog.Graph(proc)
	if g == nil {
		return "", fmt.Errorf("no procedure %s", proc)
	}
	s := dataflow.BuildSSA(g)
	if err := s.Verify(); err != nil {
		return "", err
	}
	return s.String(), nil
}

// DumpLiveness renders per-node live-variable sets.
func (m *Module) DumpLiveness(proc string) (string, error) {
	g := m.prog.Graph(proc)
	if g == nil {
		return "", fmt.Errorf("no procedure %s", proc)
	}
	lv := dataflow.ComputeLiveness(g)
	out := ""
	for i, n := range g.Nodes() {
		out += fmt.Sprintf("n%d %s: in=%v out=%v\n", i, n.Kind, setList(lv.In[n]), setList(lv.Out[n]))
	}
	return out, nil
}

func setList(s map[string]bool) []string {
	var out []string
	for v := range s {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ExceptionPolicy selects how the MiniM3 front end implements
// exceptions (§2's design space).
type ExceptionPolicy = minim3.Policy

// The MiniM3 exception policies.
const (
	// StackCutting: handler continuations on a dynamic exception stack;
	// RAISE pops and cuts (Appendix A.2, Figure 10).
	StackCutting = minim3.PolicyCutting
	// RuntimeUnwinding: descriptors plus a run-time stack walk
	// (Appendix A.1, Figures 8/9). Zero normal-case overhead.
	RuntimeUnwinding = minim3.PolicyUnwinding
	// NativeUnwinding: compiled unwinding via alternate returns and the
	// branch-table method (§4.2, Figures 3/4).
	NativeUnwinding = minim3.PolicyNativeUnwind
)

// CompileMiniM3 compiles MiniM3 source to C-- under the given policy.
// For every procedure P the result exports a wrapper run_P returning
// (status, value): status 0 on normal return, or the escaped exception's
// tag with its argument.
func CompileMiniM3(src string, policy ExceptionPolicy) (string, error) {
	return minim3.Compile(src, policy)
}
