// The Figure 7 game in MiniM3.
var next;
exception BadMove;
proc tryAMove(which) {
    try {
        if which == 1 { raise BadMove(7); }
        next = next + 1;
    } except BadMove(why) {
        next = 1000 + why;
    }
    return next;
}
