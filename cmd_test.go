package cmm_test

import (
	"os/exec"
	"strings"
	"testing"
)

// runTool executes one of the repo's commands via `go run`.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCmmrunTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmrun", "-run", "sp1", "-args", "10", "-steps", "testdata/figure1.cmm")
	if !strings.Contains(out, "[55 3628800]") {
		t.Errorf("output: %s", out)
	}
	if !strings.Contains(out, "transitions:") {
		t.Errorf("no step count: %s", out)
	}
}

func TestCmmcTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmc", "-run", "sp3", "-args", "10", "-stats", "-opt", "testdata/figure1.cmm")
	if !strings.Contains(out, "55 3628800") {
		t.Errorf("output: %s", out)
	}
	if !strings.Contains(out, "cycles=") {
		t.Errorf("no stats: %s", out)
	}
}

func TestCmmdumpTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmdump", "-proc", "sp3", "testdata/figure1.cmm")
	if !strings.Contains(out, "Entry") || !strings.Contains(out, "Branch") {
		t.Errorf("graph dump: %s", out)
	}
	out = runTool(t, "./cmd/cmmdump", "-proc", "sp3", "-ssa", "testdata/figure1.cmm")
	if !strings.Contains(out, "φ") {
		t.Errorf("ssa dump lacks phis: %s", out)
	}
}

func TestCmmdumpMiniM3(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmdump", "-minim3", "cutting", "-emit-cmm", "testdata/game.m3")
	if !strings.Contains(out, "cut to") || !strings.Contains(out, "mm_exn_top") {
		t.Errorf("minim3 emission: %s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests build binaries")
	}
	for _, ex := range []struct{ dir, want string }{
		{"./examples/quickstart", "sp3(10): interpreter (sum=55, product=3628800)"},
		{"./examples/modula3", "policy native-unwind"},
		{"./examples/optimizer", "miscompiled f(41) goes wrong"},
		{"./examples/mechanisms", "CPS tail call"},
	} {
		out := runTool(t, ex.dir)
		if !strings.Contains(out, ex.want) {
			t.Errorf("%s: output lacks %q:\n%s", ex.dir, ex.want, out)
		}
	}
}
