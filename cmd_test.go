package cmm_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool executes one of the repo's commands via `go run`.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// runToolFail executes a command expecting a non-zero exit and returns
// the combined output.
func runToolFail(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go run %v: expected failure, got success\n%s", args, out)
	}
	return string(out)
}

func TestCmmrunTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmrun", "-run", "sp1", "-args", "10", "-steps", "testdata/figure1.cmm")
	if !strings.Contains(out, "[55 3628800]") {
		t.Errorf("output: %s", out)
	}
	if !strings.Contains(out, "transitions:") {
		t.Errorf("no step count: %s", out)
	}
}

// TestCmmrunEngineFlag: -engine=native runs the compiled-closure tier
// with counters identical to the fast engine, and a bad engine name
// fails with a message listing every valid engine.
func TestCmmrunEngineFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	var stats [2]string
	for i, engine := range []string{"fast", "native"} {
		out := runTool(t, "./cmd/cmmrun", "-engine="+engine, "-run", "sp1", "-args", "10", "-stats=json", "testdata/figure1.cmm")
		if !strings.Contains(out, "sp1([10]) = [55 3628800") {
			t.Errorf("-engine=%s output: %s", engine, out)
		}
		// Strip the engine name from the stats line so the counter
		// fields can be compared verbatim across engines.
		line := strings.TrimSpace(out[strings.Index(out, "{"):])
		stats[i] = strings.Replace(line, `"engine":"`+engine+`"`, `"engine":"?"`, 1)
	}
	if stats[0] != stats[1] {
		t.Errorf("fast/native counter mismatch:\nfast:   %s\nnative: %s", stats[0], stats[1])
	}

	out := runToolFail(t, "./cmd/cmmrun", "-engine=turbo", "-run", "sp1", "testdata/figure1.cmm")
	for _, name := range []string{"interp", "fast", "ref", "native"} {
		if !strings.Contains(out, name) {
			t.Errorf("bad-engine error does not list %q: %s", name, out)
		}
	}
}

// TestCmmrunStatsJSON: -stats=json emits the machine counters as a
// single parseable JSON object for the bench tooling to scrape.
func TestCmmrunStatsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmrun", "-engine=fast", "-run", "sp3", "-args", "10", "-stats=json", "testdata/figure1.cmm")
	line := out[strings.Index(out, "{"):]
	var stats map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &stats); err != nil {
		t.Fatalf("-stats=json output does not parse: %v\n%s", err, out)
	}
	for _, key := range []string{"cycles", "instrs", "loads", "stores"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("-stats=json missing %q: %s", key, line)
		}
	}
}

// TestCmmrunObservability: -trace/-metrics/-profile write a valid Chrome
// trace (with compile passes and runtime events on one timeline),
// deterministic metrics JSON, and folded stacks.
func TestCmmrunObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	profile := filepath.Join(dir, "profile.folded")
	runTool(t, "./cmd/cmmrun", "-engine=fast", "-run", "sp3", "-args", "10",
		"-trace", trace, "-metrics", metrics, "-profile", profile,
		"testdata/figure1.cmm")

	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawCompile, sawRun bool
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "X":
			sawCompile = true
		case "B", "E", "i":
			sawRun = true
		}
	}
	if !sawCompile || !sawRun {
		t.Errorf("trace lacks compile spans (%v) or runtime events (%v)", sawCompile, sawRun)
	}

	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	raw, err = os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if m.Counters["sim_cycles"] == 0 || m.Counters["calls"] == 0 {
		t.Errorf("metrics counters empty: %v", m.Counters)
	}

	raw, err = os.ReadFile(profile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "sp3") || !strings.Contains(string(raw), ";") {
		t.Errorf("folded profile lacks stacks: %s", raw)
	}

	// Text format renders one line per event.
	runTool(t, "./cmd/cmmrun", "-engine=fast", "-run", "sp3", "-args", "10",
		"-trace", trace, "-trace-format", "text", "testdata/figure1.cmm")
	raw, err = os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "call") || !strings.Contains(string(raw), "cyc=") {
		t.Errorf("text trace: %s", raw)
	}

	// The default interp engine traces too: the abstract machine has no
	// cycle model, but call events and a profile (in transitions) still
	// come out.
	runTool(t, "./cmd/cmmrun", "-run", "sp1", "-args", "10",
		"-trace", trace, "-profile", profile, "testdata/figure1.cmm")
	raw, err = os.ReadFile(profile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "sp1") {
		t.Errorf("interp folded profile lacks sp1: %s", raw)
	}
}

// TestCmmrunDiagnostics: failures exit non-zero and render through the
// structured diagnostic format, naming the pass that failed.
func TestCmmrunDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runToolFail(t, "./cmd/cmmrun", "-run", "nosuch", "testdata/figure1.cmm")
	if !strings.Contains(out, "error: [run]") {
		t.Errorf("runtime failure not rendered as a diagnostic:\n%s", out)
	}
	src := filepath.Join(t.TempDir(), "bad.cmm")
	if err := os.WriteFile(src, []byte("f (bits32 x) {\n    x = ;\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runToolFail(t, "./cmd/cmmrun", src)
	if !strings.Contains(out, "error: [parse]") || !strings.Contains(out, "bad.cmm:2:") {
		t.Errorf("parse failure lacks structured position/pass:\n%s", out)
	}
}

// TestCmmbenchTool: the figure regenerator emits the Figure 2 table with
// the cycle counts EXPERIMENTS.md quotes, and -bench emits JSON.
func TestCmmbenchTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmbench")
	for _, want := range []string{
		"| cut to (generated) | 148 | 540 | 3676 |",
		"| SetActivation+SetUnwindCont | 311 | 1627 | 12155 |",
		"jmp_buf words",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cmmbench figure output lacks %q:\n%s", want, out)
		}
	}
}

func TestCmmcTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmc", "-run", "sp3", "-args", "10", "-stats", "-opt", "testdata/figure1.cmm")
	if !strings.Contains(out, "55 3628800") {
		t.Errorf("output: %s", out)
	}
	if !strings.Contains(out, "cycles=") {
		t.Errorf("no stats: %s", out)
	}
}

func TestCmmdumpTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmdump", "-proc", "sp3", "testdata/figure1.cmm")
	if !strings.Contains(out, "Entry") || !strings.Contains(out, "Branch") {
		t.Errorf("graph dump: %s", out)
	}
	out = runTool(t, "./cmd/cmmdump", "-proc", "sp3", "-ssa", "testdata/figure1.cmm")
	if !strings.Contains(out, "φ") {
		t.Errorf("ssa dump lacks phis: %s", out)
	}
}

func TestCmmdumpMiniM3(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmdump", "-minim3", "cutting", "-emit-cmm", "testdata/game.m3")
	if !strings.Contains(out, "cut to") || !strings.Contains(out, "mm_exn_top") {
		t.Errorf("minim3 emission: %s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests build binaries")
	}
	for _, ex := range []struct{ dir, want string }{
		{"./examples/quickstart", "sp3(10): interpreter (sum=55, product=3628800)"},
		{"./examples/modula3", "policy native-unwind"},
		{"./examples/optimizer", "miscompiled f(41) goes wrong"},
		{"./examples/mechanisms", "CPS tail call"},
	} {
		out := runTool(t, ex.dir)
		if !strings.Contains(out, ex.want) {
			t.Errorf("%s: output lacks %q:\n%s", ex.dir, ex.want, out)
		}
	}
}

// TestCmmrunExplainTelemetry: -explain prints the distiller's kernel
// report (matched shapes with concrete parameters, rejections with
// reasons), and -telemetry prints the deterministic engine counters.
func TestCmmrunExplainTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmrun", "-engine=native", "-explain", "-telemetry",
		"-run", "sp3", "-args", "10", "testdata/figure1.cmm")
	for _, want := range []string{
		"kernel report: 3 of 4 candidate cycles distilled",
		"counted loop over",
		"frame-push",
		"frame-pop",
		"rejected — ",
		"telemetry[native]: kernel entries: 1 iters: 8 instrs: 120",
		"cycle-exit: 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cmmrun explain/telemetry output lacks %q:\n%s", want, out)
		}
	}
	// -explain works under the default interp engine too (it compiles
	// just for the report), and cmmc exposes the same report.
	out = runTool(t, "./cmd/cmmrun", "-explain", "-run", "sp3", "-args", "3", "testdata/figure1.cmm")
	if !strings.Contains(out, "kernel report:") || !strings.Contains(out, "sp3([3]) =") {
		t.Errorf("interp -explain output wrong:\n%s", out)
	}
	out = runTool(t, "./cmd/cmmc", "-explain-kernels", "testdata/figure1.cmm")
	if !strings.Contains(out, "kernel report: 3 of 4 candidate cycles distilled") {
		t.Errorf("cmmc -explain-kernels output wrong:\n%s", out)
	}
}

// TestCmmreportTool: the sentinel trends the checked-in BENCH history,
// and a synthetic cycle regression makes it exit non-zero.
func TestCmmreportTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tool smoke tests build binaries")
	}
	out := runTool(t, "./cmd/cmmreport", "BENCH_pr5.json", "BENCH_pr6.json")
	for _, want := range []string{"## Bench history", "Simulated cycles per op", "figure1_sp3"} {
		if !strings.Contains(out, want) {
			t.Errorf("cmmreport output lacks %q:\n%s", want, out)
		}
	}

	bad := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := os.WriteFile(bad, []byte(`{"olevels":[{"name":"figure1_sp3","o0_cycles":307,"o2_cycles":400}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runToolFail(t, "./cmd/cmmreport", "BENCH_pr5.json", bad)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "figure1_sp3") {
		t.Errorf("cmmreport did not flag the synthetic cycle regression:\n%s", out)
	}
}
