package cmm

import (
	"fmt"

	"cmm/internal/codegen"
	"cmm/internal/dispatch"
	"cmm/internal/machine"
	"cmm/internal/obs"
	"cmm/internal/rts"
	"cmm/internal/sem"
	"cmm/internal/vm"
)

// Dispatcher is a front-end run-time system: it receives control when
// the program yields (§3.3) and must arrange resumption through the
// Table 1 interface before returning.
type Dispatcher interface {
	Dispatch(t rts.Thread, args []uint64) error
}

// DispatcherFunc adapts a function to Dispatcher.
type DispatcherFunc func(t rts.Thread, args []uint64) error

// Dispatch implements Dispatcher.
func (f DispatcherFunc) Dispatch(t rts.Thread, args []uint64) error { return f(t, args) }

// NewUnwindDispatcher returns the Figure 9 dispatcher: it walks
// activations reading exception descriptors and unwinds to the first
// matching handler. Zero cost to enter a handler scope; dispatch walks
// the stack.
func NewUnwindDispatcher() Dispatcher { return &dispatch.UnwindDispatcher{} }

// NewExnStackDispatcher returns the Appendix A.2 dispatcher: it pops a
// handler continuation from the exception stack named by the global
// register and cuts to it. Constant-time dispatch.
func NewExnStackDispatcher(exnTopGlobal string) Dispatcher {
	return &dispatch.ExnStackDispatcher{ExnTopGlobal: exnTopGlobal}
}

// NewRegisterDispatcher returns the §4.2 single-handler-register
// dispatcher: raising cuts to the continuation held in the named global.
func NewRegisterDispatcher(handlerGlobal string) Dispatcher {
	return &dispatch.RegisterDispatcher{HandlerGlobal: handlerGlobal}
}

// DivZeroTag is the exception tag dispatchers use when a slow-but-solid
// primitive (§4.3) fails.
const DivZeroTag = dispatch.DivZeroTag

// Foreign implements an imported procedure in Go: it receives the
// value-passing area's contents and returns results for it.
type Foreign func(args []uint64) ([]uint64, error)

// Engine selects the simulated machine's execution loop. All engines
// implement the cost model bit-for-bit — simulated cycles, instruction
// counts, and memory traffic are identical — and differ only in host
// wall-clock speed. The parity suite in internal/vm asserts this on
// every paper figure and on randomized programs.
type Engine = machine.Engine

const (
	// EngineFast is the threaded-code engine (pre-decoded dispatch,
	// fused superinstructions, batched counters). The default.
	EngineFast = machine.EngineFast
	// EngineRef is the reference engine: one Step() per instruction.
	EngineRef = machine.EngineRef
	// EngineNative is the host-native tier: each basic block becomes a
	// compiled Go closure chained by direct calls, with cycle accounting
	// decoupled into per-block deltas aggregated at compile time.
	EngineNative = machine.EngineNative
)

// StackPolicy selects the activation-stack strategy's shadow model for
// Native machines. The machine always executes the canonical contiguous
// layout — results, traps, retired counters, and observer event streams
// are bit-identical under every policy — while the chosen strategy
// replays the run's control transfers against its own representation and
// accrues capture/resume/overflow costs into a separate StackStats
// ledger. See STACKS.md for the catalogue.
type StackPolicy = machine.StackKind

const (
	// StackContig is the default contiguous descending stack: O(1)
	// push/pop/cut, one-shot continuations.
	StackContig = machine.StackContig
	// StackSeg links fixed-size chunks, paying overflow/underflow links
	// at chunk edges; one-shot continuations.
	StackSeg = machine.StackSeg
	// StackCopy snapshots a continuation's frames at first cut and
	// restores the copy on every re-cut; multi-shot.
	StackCopy = machine.StackCopy
	// StackHybrid keeps frames older than the newest handler frame
	// segmented and younger frames contiguous; multi-shot with small
	// captures.
	StackHybrid = machine.StackHybrid
)

// ParseStackPolicy parses a CLI spelling ("contig", "seg", "copy",
// "hybrid").
func ParseStackPolicy(name string) (StackPolicy, error) {
	return machine.StackPolicyByName(name)
}

// StackStats is a stack policy's ledger: the simulated-cycle overhead
// its representation would add (PolicyCycles) plus cut/capture/resume/
// overflow counts. It is kept apart from Stats so the cost model's
// counters stay policy-independent.
type StackStats = machine.StackStats

// ContMode is the machine-checked reuse contract on cut continuations:
// unchecked (default), one-shot (second cut to the same continuation
// traps), or multi-shot (re-cuts allowed only under a policy that keeps
// a snapshot to re-resume — StackCopy or StackHybrid).
type ContMode = machine.ContMode

const (
	ContUnchecked = machine.ContUnchecked
	ContOneShot   = machine.ContOneShot
	ContMultiShot = machine.ContMultiShot
)

// ParseContMode parses a CLI spelling ("unchecked", "oneshot",
// "multishot").
func ParseContMode(name string) (ContMode, error) {
	return machine.ContModeByName(name)
}

// Observer is a structured event and metrics sink for one execution:
// control-transfer and run-time-interface events on the simulated-cycle
// timeline, named counters and histograms, and a simulated-cycle
// profiler. Attach one with WithObserver. Attaching an observer never
// changes simulated state: cost-model counters stay bit-identical, with
// or without one, under either engine.
//
// Exports: Observer.Metrics().JSON(), Observer.WriteChromeTrace,
// Observer.WriteTextTrace, Observer.Profile() (with Folded() for
// flamegraph tools).
type Observer = obs.Observer

// NewObserver returns an empty observability sink ready to attach to an
// Interp or a Machine.
func NewObserver() *Observer { return obs.New() }

// RunConfig configures an execution target.
type RunConfig struct {
	MemSize    int // simulated memory size; 0 means the default
	Engine     Engine
	Dispatcher Dispatcher
	Foreigns   map[string]Foreign
	Observer   *Observer
	Stack      StackPolicy
	StackSet   bool // distinguishes explicit StackContig from no policy
	Cont       ContMode
}

// RunOption configures Interp and Native.
type RunOption func(*RunConfig)

// WithMemSize sets the simulated memory size in bytes.
func WithMemSize(n int) RunOption { return func(c *RunConfig) { c.MemSize = n } }

// WithEngine selects the execution engine for Native machines (EngineFast
// is the default; Interp ignores the option).
func WithEngine(e Engine) RunOption { return func(c *RunConfig) { c.Engine = e } }

// WithDispatcher installs the front-end run-time system entered on
// yields.
func WithDispatcher(d Dispatcher) RunOption { return func(c *RunConfig) { c.Dispatcher = d } }

// WithObserver attaches an observability sink to the execution. The
// observer records typed events (calls, returns, cuts, unwind steps,
// dispatches, ...) stamped with simulated cycles, plus counters and
// histograms; it changes nothing about the simulated execution itself.
func WithObserver(o *Observer) RunOption { return func(c *RunConfig) { c.Observer = o } }

// WithStackPolicy attaches an activation-stack strategy to Native
// machines (Interp ignores the option). Policies are passive shadow
// models: execution is bit-identical under every policy, and the
// strategy's own costs accrue to Machine.StackStats.
func WithStackPolicy(k StackPolicy) RunOption {
	return func(c *RunConfig) { c.Stack = k; c.StackSet = true }
}

// WithContMode selects the one-shot/multi-shot reuse contract on cut
// continuations for Native machines (unchecked by default; violations
// trap deterministically).
func WithContMode(mode ContMode) RunOption {
	return func(c *RunConfig) { c.Cont = mode }
}

// WithForeign implements the imported procedure name in Go.
func WithForeign(name string, f Foreign) RunOption {
	return func(c *RunConfig) {
		if c.Foreigns == nil {
			c.Foreigns = map[string]Foreign{}
		}
		c.Foreigns[name] = f
	}
}

// Interp executes the module on the abstract machine of the operational
// semantics (§5). It is the reference implementation: every transition
// follows a rule of §5.2, and programs that "go wrong" report exactly
// why.
type Interp struct {
	m *sem.Machine
}

// Interp builds an interpreter for the module.
func (m *Module) Interp(opts ...RunOption) (*Interp, error) {
	var c RunConfig
	for _, o := range opts {
		o(&c)
	}
	semOpts := []sem.Option{sem.WithMaxSteps(500_000_000)}
	if c.MemSize > 0 {
		semOpts = append(semOpts, sem.WithMemSize(c.MemSize))
	}
	if c.Observer != nil {
		semOpts = append(semOpts, sem.WithObserver(c.Observer))
	}
	if c.Dispatcher != nil {
		d := c.Dispatcher
		semOpts = append(semOpts, sem.WithRuntime(sem.RuntimeFunc(
			func(mm *sem.Machine, vals []sem.Value) error {
				args := make([]uint64, len(vals))
				for i, v := range vals {
					args[i] = v.Bits
				}
				return d.Dispatch(rts.SemThread{M: mm}, args)
			})))
	}
	for name, f := range c.Foreigns {
		fn := f
		semOpts = append(semOpts, sem.WithForeign(name, func(mm *sem.Machine, vals []sem.Value) ([]sem.Value, error) {
			args := make([]uint64, len(vals))
			for i, v := range vals {
				args[i] = v.Bits
			}
			res, err := fn(args)
			if err != nil {
				return nil, err
			}
			out := make([]sem.Value, len(res))
			for i, r := range res {
				out[i] = sem.Word(r)
			}
			return out, nil
		}))
	}
	mm, err := sem.New(m.sess.Program(), semOpts...)
	if err != nil {
		return nil, err
	}
	return &Interp{m: mm}, nil
}

// Run executes the named procedure and returns the values it returned.
func (i *Interp) Run(proc string, args ...uint64) ([]uint64, error) {
	vs, err := i.m.Run(proc, args...)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(vs))
	for j, v := range vs {
		out[j] = v.Bits
	}
	return out, nil
}

// Steps reports how many transitions the last runs took.
func (i *Interp) Steps() int64 { return i.m.Steps }

// Observer returns the attached observability sink, or nil. The abstract
// machine has no cycle-level cost model, so its events are stamped with
// transition counts (Steps) instead of simulated cycles.
func (i *Interp) Observer() *Observer { return i.m.Observer() }

// CompileConfig selects code-generation strategies (the paper's
// ablations).
type CompileConfig struct {
	// TestAndBranch replaces the branch-table method (Figures 3/4) with
	// an index-and-compare sequence.
	TestAndBranch bool
	// NoCalleeSaves forces every value live across a call into the
	// frame, approximating implementations without callee-saves
	// registers (§2).
	NoCalleeSaves bool
	// Opt is the codegen optimization level (0, 1, or 2); it mirrors the
	// -O flag and is usually set alongside Module.ApplyOpt. 0 is the
	// bit-identical baseline; 1 enables precise callee-saves prefixes
	// and leaf-frame elision; 2 adds the return peepholes (branch-table
	// conversion under TestAndBranch, link-time jump threading).
	Opt int
}

// Machine is the module compiled to the simulated target machine.
type Machine struct {
	inst *vm.Instance
	prog *codegen.Program
}

// Native compiles the module and loads it on a fresh simulated machine.
func (m *Module) Native(cc CompileConfig, opts ...RunOption) (*Machine, error) {
	var c RunConfig
	for _, o := range opts {
		o(&c)
	}
	// Codegen runs through the module's pipeline session: per-procedure
	// emission fans out over the session's worker pool and lands in
	// PassStats. The default configuration reuses the session's cached
	// code; ablations recompile.
	copts := codegen.Options{
		TestAndBranch:      cc.TestAndBranch,
		DisableCalleeSaves: cc.NoCalleeSaves,
		Opt:                cc.Opt,
	}
	var cp *codegen.Program
	var err error
	if cc == (CompileConfig{}) {
		cp, err = m.sess.Codegen()
	} else {
		cp, err = m.sess.CodegenWith(copts)
	}
	if err != nil {
		return nil, err
	}
	var vopts []vm.Option
	vopts = append(vopts, vm.WithEngine(c.Engine))
	if c.MemSize > 0 {
		vopts = append(vopts, vm.WithMemSize(c.MemSize))
	}
	if c.Observer != nil {
		vopts = append(vopts, vm.WithObserver(c.Observer))
	}
	if c.StackSet {
		vopts = append(vopts, vm.WithStackPolicy(c.Stack))
	}
	if c.Cont != ContUnchecked {
		vopts = append(vopts, vm.WithContMode(c.Cont))
	}
	if c.Dispatcher != nil {
		d := c.Dispatcher
		vopts = append(vopts, vm.WithRuntime(vm.RuntimeFunc(
			func(t *vm.Thread, args []uint64) error {
				return d.Dispatch(rts.VMThread{T: t}, args)
			})))
	}
	for name, f := range c.Foreigns {
		fn := f
		vopts = append(vopts, vm.WithForeign(name, func(inst *vm.Instance, args []uint64) ([]uint64, error) {
			return fn(args)
		}))
	}
	inst, err := vm.NewInstance(cp, vopts...)
	if err != nil {
		return nil, err
	}
	return &Machine{inst: inst, prog: cp}, nil
}

// Run executes the named procedure; results are the contents of the
// result registers.
func (mc *Machine) Run(proc string, args ...uint64) ([]uint64, error) {
	return mc.inst.Run(proc, args...)
}

// Stats is the simulated machine's cost-model counters.
type Stats = machine.Counters

// Stats reports accumulated execution statistics.
func (mc *Machine) Stats() Stats { return mc.inst.Stats() }

// ResetStats zeroes the counters and the engine telemetry.
func (mc *Machine) ResetStats() { mc.inst.ResetStats() }

// Telemetry is the engine-introspection counter set: kernel entries and
// closed-form iterations on the native tier, deopt events bucketed by
// reason, trampoline dispatches, and superinstruction-fusion hits on the
// fast engine. Unlike Stats it is engine-DEPENDENT by design, but it is
// deterministic for a given (program, engine, budget) and never feeds
// back into the simulated counters.
type Telemetry = machine.Telemetry

// Telemetry reports the machine's engine-introspection counters.
func (mc *Machine) Telemetry() Telemetry { return mc.inst.Telemetry() }

// EngineName names the machine's selected engine ("ref", "fast", or
// "native").
func (mc *Machine) EngineName() string { return mc.inst.EngineName() }

// RecordEngineTelemetry snapshots the engine-introspection counters into
// the attached observer, adding the engine-dependent "engine" section to
// the metrics export. Opt-in — without this call the export stays
// engine-independent. A no-op without an observer.
func (mc *Machine) RecordEngineTelemetry() { mc.inst.RecordEngineTelemetry() }

// StackStats reports the attached stack policy's ledger (zero without
// one — the default contiguous layout keeps no ledger).
func (mc *Machine) StackStats() StackStats { return mc.inst.StackStats() }

// StackPolicyName names the attached stack policy ("contig" when none).
func (mc *Machine) StackPolicyName() string { return mc.inst.StackPolicyName() }

// RecordStackStats snapshots the stack-policy ledger into the attached
// observer, adding the representation-dependent "stack" section and the
// capture_words/segments histograms to the metrics export. Opt-in for
// the same reason as RecordEngineTelemetry; a no-op without both an
// observer and a policy.
func (mc *Machine) RecordStackStats() { mc.inst.RecordStackStats() }

// KernelCandidate is one cycle the native distiller considered: the
// kernel shape that matched (with its closed form) or the precise reason
// the cycle kept its ordinary closure chains.
type KernelCandidate = machine.KernelCandidate

// KernelReport is the distiller's compile-time explain output: one
// verdict per candidate cycle of the compiled program.
type KernelReport struct {
	Candidates []KernelCandidate
}

// Matched counts the candidates that were distilled into kernels.
func (r KernelReport) Matched() int {
	n := 0
	for _, c := range r.Candidates {
		if c.Matched {
			n++
		}
	}
	return n
}

// Format renders the report for humans, one line per candidate. The
// resolve function maps a code index to a procedure name; nil is fine.
func (r KernelReport) Format(resolve func(pc int) string) string {
	out := fmt.Sprintf("kernel report: %d of %d candidate cycles distilled\n", r.Matched(), len(r.Candidates))
	for _, c := range r.Candidates {
		where := ""
		if resolve != nil {
			if name := resolve(c.Header); name != "" {
				where = " in " + name
			}
		}
		verdict := "rejected"
		if c.Matched {
			verdict = "matched"
		}
		out += fmt.Sprintf("  pc %d..%d %s%s: %s — %s\n", c.Header, c.End, c.Shape, where, verdict, c.Reason)
	}
	return out
}

// KernelReport returns the native distiller's explain report for the
// compiled program. Compile-time introspection only: it forces the
// native-tier compile but executes nothing, so it works regardless of
// which engine will run the program.
func (mc *Machine) KernelReport() KernelReport {
	return KernelReport{Candidates: mc.inst.ExplainKernels()}
}

// ProcAt resolves a code index to the procedure containing it, or "".
func (mc *Machine) ProcAt(pc int) string {
	if pi := mc.prog.ProcAt(pc); pi != nil {
		return pi.Name
	}
	return ""
}

// Observer returns the attached observability sink, or nil.
func (mc *Machine) Observer() *Observer { return mc.inst.Observer() }

// RecordObsCounters snapshots the machine's cost-model counters into the
// attached observer so they appear in the metrics export. Call it after
// the runs of interest (a no-op without an observer).
func (mc *Machine) RecordObsCounters() { mc.inst.RecordObsCounters() }

// CodeSize reports the number of instructions generated for a procedure
// (the Figures 3/4 space comparison).
func (mc *Machine) CodeSize(proc string) int { return mc.prog.CodeSize(proc) }

// HeapStart returns the first free simulated address past static data,
// usable for run-time structures such as exception stacks.
func (mc *Machine) HeapStart() uint64 { return mc.prog.HeapStart }

// Disassemble renders a procedure's generated code.
func (mc *Machine) Disassemble(proc string) (string, error) {
	pi := mc.prog.Procs[proc]
	if pi == nil {
		return "", fmt.Errorf("no procedure %s", proc)
	}
	out := ""
	for i := pi.Entry; i < pi.End; i++ {
		out += fmt.Sprintf("%5d: %s\n", i, machine.Disasm(mc.prog.Code[i]))
	}
	return out, nil
}
