package cmm_test

import (
	"strings"
	"testing"

	"cmm"
	"cmm/internal/paper"
)

// The compile-time explain contract: for every candidate cycle the
// distiller considered in the paper's figure workloads, the kernel
// report names either the matched shape (with a concrete description)
// or the precise rejection reason. No candidate may be silent.

func explainReport(t *testing.T, name, src string) (cmm.KernelReport, *cmm.Machine) {
	t.Helper()
	mod, err := cmm.Load(src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	mach, err := mod.Native(cmm.CompileConfig{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return mach.KernelReport(), mach
}

func TestExplainCoversPaperFigures(t *testing.T) {
	sources := []struct {
		name string
		src  string
	}{
		{"figure1", paper.Figure1},
		{"fig2_cut", paper.Fig2Cut},
		{"fig2_runtime_cut", paper.Fig2RuntimeCut},
		{"fig2_runtime_unwind", paper.Fig2RuntimeUnwind},
		{"fig2_native_unwind", paper.Fig2NativeUnwind},
		{"fig2_cps", paper.Fig2CPS},
	}
	for _, s := range sources {
		rep, mach := explainReport(t, s.name, s.src)
		if len(rep.Candidates) == 0 {
			t.Errorf("%s: distiller reported no candidate cycles", s.name)
			continue
		}
		for _, c := range rep.Candidates {
			if c.Reason == "" {
				t.Errorf("%s: candidate pc %d..%d has no match description or rejection reason",
					s.name, c.Header, c.End)
			}
			if c.Matched && c.Shape == "" {
				t.Errorf("%s: matched candidate pc %d..%d names no shape", s.name, c.Header, c.End)
			}
		}
		text := rep.Format(mach.ProcAt)
		if !strings.Contains(text, "kernel report:") {
			t.Errorf("%s: formatted report lacks the summary line:\n%s", s.name, text)
		}
		if rep.Matched() > 0 && !strings.Contains(text, "matched") {
			t.Errorf("%s: report has %d matches but no 'matched' line:\n%s", s.name, rep.Matched(), text)
		}
	}
}

// TestExplainFigure1Shapes pins the concrete matches on Figure 1: sp1's
// recursion distills as a frame-push and a frame-pop kernel, and sp3's
// reduction loop as a counted loop; each description names the shape's
// parameters (frame size, countdown register).
func TestExplainFigure1Shapes(t *testing.T) {
	rep, mach := explainReport(t, "figure1", paper.Figure1)
	text := rep.Format(mach.ProcAt)
	for _, want := range []string{
		"frame-push",
		"frame-pop",
		"counted-loop",
		"bytes/frame",
		"counted loop over",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("figure1 explain output lacks %q:\n%s", want, text)
		}
	}
	if rep.Matched() < 3 {
		t.Errorf("figure1: %d matched kernels, want ≥3 (sp1 push, sp1 pop, sp3 counted):\n%s",
			rep.Matched(), text)
	}
}

// TestExplainRejectionReasons: the CPS variant raises by tail call, a
// shape outside the distiller's vocabulary, so its report must carry
// concrete rejection text rather than bare "no".
func TestExplainRejectionReasons(t *testing.T) {
	rep, mach := explainReport(t, "fig2_cps", paper.Fig2CPS)
	text := rep.Format(mach.ProcAt)
	if !strings.Contains(text, "rejected — ") {
		t.Errorf("fig2_cps explain output has no rejection lines:\n%s", text)
	}
	for _, c := range rep.Candidates {
		if !c.Matched && len(c.Reason) < 10 {
			t.Errorf("fig2_cps: rejection reason too vague: %q", c.Reason)
		}
	}
}
