package cmm_test

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cmm"
	"cmm/internal/obs"
	"cmm/internal/paper"
	"cmm/internal/progen"
)

// The -O2 correctness contract: optimization may change cycle counts
// but never observable behavior. This file enforces it three ways — a
// randomized differential sweep (results, traps, and observable event
// streams identical at -O0 and -O2), ref-vs-fast engine parity of the
// optimized code, and the Hennessy-1981 ablation composed with the
// interprocedural pass.

// sweepSeeds reads the seed range from CMM_SWEEP_SEEDS: "N" means seeds
// 0..N-1, "lo-hi" is inclusive. The default range is 0..19 — sized so a
// plain `go test ./...` fits the default per-package timeout on a
// single-core box; CI widens it to 0-39 via the env var. -short trims
// it further.
func sweepSeeds(t *testing.T) (int64, int64) {
	if spec := os.Getenv("CMM_SWEEP_SEEDS"); spec != "" {
		if lo, hi, ok := strings.Cut(spec, "-"); ok {
			l, err1 := strconv.ParseInt(lo, 10, 64)
			h, err2 := strconv.ParseInt(hi, 10, 64)
			if err1 != nil || err2 != nil || h < l {
				t.Fatalf("bad CMM_SWEEP_SEEDS %q (want N or lo-hi)", spec)
			}
			return l, h
		}
		n, err := strconv.ParseInt(spec, 10, 64)
		if err != nil || n < 1 {
			t.Fatalf("bad CMM_SWEEP_SEEDS %q (want N or lo-hi)", spec)
		}
		return 0, n - 1
	}
	if testing.Short() {
		return 0, 7
	}
	return 0, 19
}

// obsSignature reduces an event trace to its optimization-stable core:
// the kind sequence, plus the payloads whose values the language
// semantics fix (yield arguments, unwind-walk counts, descriptor
// indices, resume targets). Timestamps, PCs, and stack pointers shift
// legitimately when frames shrink, so they are excluded.
func obsSignature(trace []obs.Event) []string {
	var sig []string
	for _, ev := range trace {
		switch ev.Kind {
		case obs.KYield, obs.KUnwindStep, obs.KDescLookup, obs.KResumeUnwind, obs.KResumeReturn:
			sig = append(sig, fmt.Sprintf("%v a=%d", ev.Kind, ev.A))
		default:
			sig = append(sig, fmt.Sprintf("%v", ev.Kind))
		}
	}
	return sig
}

// runAtLevel compiles src fresh at the given -O level and runs proc
// under an observer, returning the results (nil on trap), the trap
// message, and the stable event signature.
func runAtLevel(t *testing.T, src string, level int, e cmm.Engine, proc string, args ...uint64) ([]uint64, string, []string) {
	t.Helper()
	mod, err := cmm.Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if level != 0 {
		if _, err := mod.ApplyOpt(level); err != nil {
			t.Fatalf("-O%d: %v", level, err)
		}
	}
	o := cmm.NewObserver()
	mach, err := mod.Native(cmm.CompileConfig{Opt: level}, cmm.WithObserver(o), cmm.WithEngine(e))
	if err != nil {
		t.Fatalf("-O%d compile: %v", level, err)
	}
	res, err := mach.Run(proc, args...)
	trap := ""
	if err != nil {
		trap = err.Error()
		res = nil
	}
	return res, trap, obsSignature(o.Trace)
}

// diffSignatures compares observable event streams. With
// prefixOnly (one side hit the instruction budget, so its stream is a
// truncation of the same execution), the shorter stream must be a
// prefix of the longer; otherwise the streams must match exactly.
func diffSignatures(t *testing.T, label string, o0, o2 []string, prefixOnly bool) {
	t.Helper()
	n := len(o0)
	if len(o2) < n {
		n = len(o2)
	}
	for i := 0; i < n; i++ {
		if o0[i] != o2[i] {
			t.Errorf("%s: observable event %d differs: -O0 %s, -O2 %s", label, i, o0[i], o2[i])
			return
		}
	}
	if !prefixOnly && len(o0) != len(o2) {
		t.Errorf("%s: observable event count differs: -O0 %d, -O2 %d", label, len(o0), len(o2))
	}
}

var trapPC = regexp.MustCompile(`pc=\d+`)

// normalizeTrap strips the trapping pc from a trap message: code layout
// moves under optimization, but the trap REASON may not.
func normalizeTrap(trap string) string { return trapPC.ReplaceAllString(trap, "pc=?") }

// TestOptLevelDifferentialSweep runs randomized progen programs —
// exceptions on and off, several inputs — at -O0 and -O2 and requires
// identical results, identical traps, and identical observable event
// streams. Each level additionally runs on all three engines
// (ref/fast/native), which must agree exactly with each other at that
// level. The seed range is CMM_SWEEP_SEEDS-configurable so CI can
// widen it without a code change.
func TestOptLevelDifferentialSweep(t *testing.T) {
	lo, hi := sweepSeeds(t)
	for seed := lo; seed <= hi; seed++ {
		for _, exc := range []bool{false, true} {
			src := progen.Generate(seed, progen.Config{Exceptions: exc})
			for _, arg := range []uint64{0, 7, 100} {
				label := fmt.Sprintf("seed=%d/exc=%v/arg=%d", seed, exc, arg)
				res0, trap0, sig0 := runAtLevel(t, src, 0, cmm.EngineFast, "p0", arg)
				res2, trap2, sig2 := runAtLevel(t, src, 2, cmm.EngineFast, "p0", arg)
				// Within one level the engines are bit-identical, so the
				// three-way comparison is exact: same results, same trap
				// text, same full event stream.
				for _, eng := range []struct {
					name string
					e    cmm.Engine
				}{{"ref", cmm.EngineRef}, {"native", cmm.EngineNative}} {
					for _, lv := range []struct {
						level int
						res   []uint64
						trap  string
						sig   []string
					}{{0, res0, trap0, sig0}, {2, res2, trap2, sig2}} {
						rE, tE, sE := runAtLevel(t, src, lv.level, eng.e, "p0", arg)
						elabel := fmt.Sprintf("%s/-O%d/%s", label, lv.level, eng.name)
						if tE != lv.trap {
							t.Errorf("%s: trap mismatch vs fast: %q vs %q", elabel, tE, lv.trap)
							continue
						}
						if fmt.Sprint(rE) != fmt.Sprint(lv.res) {
							t.Errorf("%s: result mismatch vs fast: %v vs %v", elabel, rE, lv.res)
						}
						diffSignatures(t, elabel, lv.sig, sE, false)
					}
				}
				// A budget trap is a resource limit, not program
				// semantics: the optimized code retires fewer
				// instructions, so it truncates the same execution at a
				// different point (or completes where -O0 could not).
				// Event streams must still agree as prefixes.
				budget := strings.Contains(trap0, "instruction budget") ||
					strings.Contains(trap2, "instruction budget")
				if budget {
					diffSignatures(t, label, sig0, sig2, true)
					continue
				}
				if normalizeTrap(trap0) != normalizeTrap(trap2) {
					t.Errorf("%s: trap mismatch: -O0 %q, -O2 %q", label, trap0, trap2)
					continue
				}
				// p0 declares one result; registers past it are scratch
				// and legitimately hold frame addresses that move when
				// frames shrink.
				if trap0 == "" && res0[0] != res2[0] {
					t.Errorf("%s: result mismatch: -O0 %d, -O2 %d", label, res0[0], res2[0])
				}
				diffSignatures(t, label, sig0, sig2, false)
			}
		}
	}
}

// TestOptLevelEngineParity reruns every optimizer workload at -O2 on
// all three engines: results and every simulated cost counter must be
// bit-identical, so the optimization layer cannot introduce an
// engine-dependent path.
func TestOptLevelEngineParity(t *testing.T) {
	for _, w := range paper.CycleWorkloads {
		w := w
		if w.Dispatcher != "" {
			// Dispatcher-driven workloads are covered by the golden tests;
			// here we need deterministic single-engine reruns.
			continue
		}
		t.Run(w.Name, func(t *testing.T) {
			run := func(e cmm.Engine) ([]uint64, cmm.Stats) {
				mod, err := cmm.Load(w.Src)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := mod.ApplyOpt(2); err != nil {
					t.Fatal(err)
				}
				mach, err := mod.Native(cmm.CompileConfig{
					TestAndBranch: w.TestAndBranch,
					NoCalleeSaves: w.NoCalleeSaves,
					Opt:           2,
				}, cmm.WithEngine(e))
				if err != nil {
					t.Fatal(err)
				}
				res, err := mach.Run(w.Proc, w.Args...)
				if err != nil {
					t.Fatalf("engine %v: %v", e, err)
				}
				return res, mach.Stats()
			}
			refRes, refStats := run(cmm.EngineRef)
			for _, e := range []cmm.Engine{cmm.EngineFast, cmm.EngineNative} {
				gotRes, gotStats := run(e)
				if fmt.Sprint(refRes) != fmt.Sprint(gotRes) {
					t.Errorf("result mismatch: ref %v engine %v %v", refRes, e, gotRes)
				}
				if refStats != gotStats {
					t.Errorf("counter mismatch at -O2:\nref:      %+v\nengine %v: %+v", refStats, e, gotStats)
				}
			}
		})
	}
}

// TestOptimizedModulesVetClean runs the §4 well-formedness verifier
// over the IR AFTER -O2 rewrote it: edge pruning and continuation
// removal must leave every remaining annotation and continuation
// well-formed, on the fixed workloads and on randomized programs.
func TestOptimizedModulesVetClean(t *testing.T) {
	check := func(label, src string) {
		t.Helper()
		mod, err := cmm.Load(src)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if _, err := mod.ApplyOpt(2); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if ds := mod.Verify(false); ds.HasErrors() {
			t.Errorf("%s: -O2 IR has verifier errors:\n%s", label, ds)
		}
	}
	for _, w := range paper.CycleWorkloads {
		check(w.Name, w.Src)
	}
	for seed := int64(0); seed < 10; seed++ {
		for _, exc := range []bool{false, true} {
			src := progen.Generate(seed, progen.Config{Exceptions: exc})
			check(fmt.Sprintf("progen seed=%d exc=%v", seed, exc), src)
		}
	}
}

// bankExhaustSrc mirrors the internal/codegen layout regression: ten
// values live across a call overflow the eight-register callee-saves
// bank. Here we assert the spilled values survive the call at every -O
// level (the execution side of the bank-exhaustion fallback).
const bankExhaustSrc = `
f(bits32 n) {
    bits32 a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, r;
    a0 = 1; a1 = 2; a2 = 3; a3 = 4; a4 = 5;
    a5 = 6; a6 = 7; a7 = 8; a8 = 9; a9 = 10;
    r = g(n);
    return (r + a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9);
}
g(bits32 x) { return (x + 1); }
`

func TestBankExhaustionExecution(t *testing.T) {
	for _, level := range []int{0, 1, 2} {
		res, trap, _ := runAtLevel(t, bankExhaustSrc, level, cmm.EngineFast, "f", 5)
		if trap != "" {
			t.Fatalf("-O%d: %s", level, trap)
		}
		if res[0] != 61 {
			t.Errorf("-O%d: f(5) = %d, want 61", level, res[0])
		}
	}
}

// hennessySrc is the classic miscompilation from cmm_test.go's facade
// test: b's definition is dead only if the analysis cannot see the cut
// edge back to k.
const hennessySrc = `
f(bits32 a) {
    bits32 b, c;
    b = a + 1;
    c = g(k) also cuts to k;
    return (c);
continuation k:
    return (b);
}
g(bits32 kv) {
    cut to kv() also aborts;
}
`

// TestHennessyStillCaughtAtO2 composes the WithoutExceptionEdges
// ablation with the new interprocedural pass. The pass must refuse to
// quiet the call site (g really cuts), so sound -O2 keeps the handler
// working — and the ablation still reproduces the Hennessy-1981
// miscompilation on top of it, proving the interprocedural pass did not
// mask the experiment.
func TestHennessyStillCaughtAtO2(t *testing.T) {
	sound, err := cmm.Load(hennessySrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sound.ApplyOpt(2); err != nil {
		t.Fatal(err)
	}
	mach, err := sound.Native(cmm.CompileConfig{Opt: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run("f", 41)
	if err != nil || len(res) == 0 || res[0] != 42 {
		t.Errorf("sound -O2: f(41) = %v (%v), want 42", res, err)
	}

	unsound, err := cmm.Load(hennessySrc)
	if err != nil {
		t.Fatal(err)
	}
	ip := unsound.OptimizeInterproc()
	if ip.SitesQuieted != 0 || ip.CutEdgesRemoved != 0 {
		t.Errorf("interproc wrongly quieted a cutting callee: %+v", ip)
	}
	unsound.OptimizeUnsoundWithoutExceptionEdges()
	in, err := unsound.Interp()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run("f", 41); err == nil {
		t.Error("unsound ablation composed with -O2 should still break the handler")
	}
}
