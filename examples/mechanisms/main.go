// Mechanisms: the Figure 2 design space, live.
//
// C-- offers four ways to transfer control to an exception handler:
//
//	                      no stack walk          stack walk
//	generated code        cut to                 return <m/n>
//	run-time system       SetCutToCont           SetActivation+SetUnwindCont
//
// plus continuation-passing style via fully general tail calls. This
// example runs one scenario — raise an exception from depth d back to a
// handler at the bottom — through all five, printing the simulated
// cycle cost of the raise for two depths so the shapes are visible:
// cutting is constant-time, unwinding is linear in depth.
package main

import (
	"fmt"
	"log"

	"cmm"
)

// Generated-code stack cutting: dig passes the handler continuation
// down; raising cuts directly to it.
const cutSrc = `
f(bits32 depth) {
    bits32 r;
    r = dig(depth, k) also cuts to k;
    return (r);
continuation k(r):
    return (r);
}
dig(bits32 n, bits32 kv) {
    bits32 r;
    if n == 0 {
        cut to kv(42) also aborts;
    }
    r = dig(n - 1, kv) also aborts;
    return (r);
}
`

// Run-time cutting: the handler continuation sits in a global register;
// raising yields, and the run-time system cuts with SetCutToCont.
const runtimeCutSrc = `
bits32 handler;
f(bits32 depth) {
    bits32 tag, arg;
    handler = k;
    arg = dig(depth) also cuts to k;
    return (arg);
continuation k(tag, arg):
    return (arg);
}
dig(bits32 n) {
    bits32 r;
    if n == 0 {
        yield(1, 7, 42) also aborts;
    }
    r = dig(n - 1) also aborts;
    return (r);
}
`

// Run-time unwinding: the handler's call site carries a descriptor; the
// Figure 9 dispatcher walks the stack to find it.
const runtimeUnwindSrc = `
section "data" {
    desc: bits32 1,  7, 0, 1;
}
f(bits32 depth) {
    bits32 r;
    r = dig(depth) also unwinds to k also aborts descriptors(desc);
    return (r);
continuation k(r):
    return (r);
}
dig(bits32 n) {
    bits32 r;
    if n == 0 {
        yield(1, 7, 42) also aborts;
    }
    r = dig(n - 1) also aborts;
    return (r);
}
`

// Native-code unwinding: every return is a branch-table return; raising
// returns abnormally and each frame propagates in generated code.
const nativeUnwindSrc = `
f(bits32 depth) {
    bits32 r;
    r = dig(depth) also returns to k;
    return (r);
continuation k(r):
    return (r);
}
dig(bits32 n) {
    bits32 r;
    if n == 0 {
        return <0/1> (42);
    }
    r = dig(n - 1) also returns to kx;
    return <1/1> (r);
continuation kx(r):
    return <0/1> (r);
}
`

// Continuation-passing style: the handler is an ordinary procedure
// passed down; raising is a fully general tail call (jump), so the
// handler returns directly to f's call site.
const cpsSrc = `
f(bits32 depth) {
    bits32 r;
    r = dig(depth, hproc);
    return (r);
}
hproc(bits32 arg) {
    return (arg);
}
dig(bits32 n, bits32 h) {
    bits32 r;
    if n == 0 {
        jump h(42);        /* raise = tail call to the exception continuation */
    }
    r = dig(n - 1, h);
    return (r);
}
`

func measure(name, src string, d cmm.Dispatcher, depth uint64) int64 {
	mod, err := cmm.Load(src)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	var opts []cmm.RunOption
	if d != nil {
		opts = append(opts, cmm.WithDispatcher(d))
	}
	mach, err := mod.Native(cmm.CompileConfig{}, opts...)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	res, err := mach.Run("f", depth)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if res[0] != 42 {
		log.Fatalf("%s: got %d, want 42", name, res[0])
	}
	return mach.Stats().Cycles
}

func main() {
	fmt.Println("Raise from depth d to a handler at the bottom; simulated cycles:")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s %14s\n", "mechanism", "d=16", "d=128", "marginal/frame")
	rows := []struct {
		name string
		src  string
		d    cmm.Dispatcher
	}{
		{"cut to (generated code)", cutSrc, nil},
		{"SetCutToCont (runtime)", runtimeCutSrc, cmm.NewRegisterDispatcher("handler")},
		{"SetUnwindCont (runtime)", runtimeUnwindSrc, cmm.NewUnwindDispatcher()},
		{"return <m/n> (generated)", nativeUnwindSrc, nil},
		{"CPS tail call", cpsSrc, nil},
	}
	for _, row := range rows {
		c16 := measure(row.name, row.src, row.d, 16)
		c128 := measure(row.name, row.src, row.d, 128)
		fmt.Printf("%-28s %12d %12d %14.1f\n", row.name, c16, c128, float64(c128-c16)/112)
	}
	fmt.Println()
	fmt.Println("Every mechanism pays the linear cost of *building* the stack; what")
	fmt.Println("differs is the raise: cutting mechanisms add nothing per frame,")
	fmt.Println("while unwinding mechanisms pay per frame unwound — compare the")
	fmt.Println("marginal column against the pure descent (cut to).")
}
