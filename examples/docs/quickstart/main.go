// Command quickstart is the README quickstart example, kept
// byte-identical to the README fence by TestDocsExamplesInSync.
package main

import (
	"fmt"

	"cmm"
)

const src = `
export sp3;
sp3(bits32 n) {
    bits32 s, p;
    s = 1; p = 1;
loop:
    if n == 1 {
        return (s, p);
    } else {
        s = s + n;
        p = p * n;
        n = n - 1;
        goto loop;
    }
}
`

func main() {
	mod, _ := cmm.Load(src) // parse, check, build Abstract C--
	mod.Optimize()          // §6, exceptions need no special cases

	in, _ := mod.Interp()          // the §5 operational semantics
	fmt.Println(in.Run("sp3", 10)) // [55 3628800]

	mach, _ := mod.Native(cmm.CompileConfig{}) // compile to the simulated machine
	fmt.Println(mach.Run("sp3", 10))           // [55 3628800 ...]
	fmt.Println(mach.Stats().Cycles)           // simulated cycles
}
