// Quickstart: load the paper's Figure 1 (sum and product of 1..n three
// ways), run it on both execution targets, and optimize it.
package main

import (
	"fmt"
	"log"

	"cmm"
	"cmm/internal/paper"
)

func main() {
	// Figure 1 of the paper: sp1 (ordinary recursion), sp2 (tail
	// recursion), sp3 (a loop), each computing Σ 1..n and Π 1..n.
	mod, err := cmm.Load(paper.Figure1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("procedures:", mod.Procedures())

	// The reference interpreter: the operational semantics of §5.
	in, err := mod.Interp()
	if err != nil {
		log.Fatal(err)
	}
	// The compiled target: a simulated machine with registers, a real
	// stack, and a cycle cost model.
	mach, err := mod.Native(cmm.CompileConfig{})
	if err != nil {
		log.Fatal(err)
	}

	for _, proc := range []string{"sp1", "sp2", "sp3"} {
		ref, err := in.Run(proc, 10)
		if err != nil {
			log.Fatal(err)
		}
		got, err := mach.Run(proc, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s(10): interpreter (sum=%d, product=%d), compiled (sum=%d, product=%d)\n",
			proc, ref[0], ref[1], got[0], got[1])
	}

	s := mach.Stats()
	fmt.Printf("compiled execution: %d instructions, %d cycles, %d loads, %d stores\n",
		s.Instrs, s.Cycles, s.Loads, s.Stores)

	// The optimizer needs no special cases for exceptions (§6) — or for
	// anything else; here it folds and cleans Figure 1.
	fmt.Println("optimizer:", mod.Optimize())

	// Dump one graph to see the Table 2 node kinds.
	text, err := mod.DumpGraph("sp3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAbstract C-- for sp3 after optimization:\n%s", text)
}
