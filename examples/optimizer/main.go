// Optimizer demo: the paper's §6 on its own examples.
//
//  1. Figure 5/6: the example procedure f translated to Abstract C--
//     with its SSA-numbered dataflow; the unwind edge carries the b used
//     by continuation k across the call.
//
//  2. Hennessy's pitfall: a value used only by an exception handler.
//     With the also-annotations' flow edges the optimizer preserves it;
//     with the edges hidden (an unsound ablation) dead-code elimination
//     deletes the assignment and the handler reads garbage.
package main

import (
	"fmt"
	"log"

	"cmm"
)

const figure5 = `
f(bits32 a) {
    bits32 b, c, d;
    b = a;
    c = a;
    b, c = g() also unwinds to k also aborts;
    c = b + c + a;
    return (c);
continuation k(d):
    return (b + d);
}
g() {
    yield(0) also aborts;
    return (1, 2);
}
`

const hennessy = `
f(bits32 a) {
    bits32 b, c;
    b = a + 1;
    c = g(k) also cuts to k;
    return (c);
continuation k:
    return (b);        /* b is used ONLY on the exceptional path */
}
g(bits32 kv) {
    cut to kv() also aborts;
}
`

func main() {
	// Part 1: Figure 5 -> Figure 6.
	mod, err := cmm.Load(figure5)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := mod.DumpGraph("f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 5's procedure f as Abstract C-- (Table 2 nodes):")
	fmt.Print(graph)

	ssa, err := mod.DumpSSA("f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIts SSA numbering (the Figure 6 presentation):")
	fmt.Print(ssa)

	live, err := mod.DumpLiveness("f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLive variables (note b live across the call, kept by the unwind edge):")
	fmt.Print(live)

	// Part 2: the Hennessy scenario.
	fmt.Println("\n--- exception edges and the optimizer ---")

	sound, err := cmm.Load(hennessy)
	if err != nil {
		log.Fatal(err)
	}
	stats := sound.Optimize()
	fmt.Println("with exception edges   :", stats)
	in, err := sound.Interp()
	if err != nil {
		log.Fatal(err)
	}
	res, err := in.Run("f", 41)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized f(41) = %d (handler saw b = 42: correct)\n", res[0])

	unsound, err := cmm.Load(hennessy)
	if err != nil {
		log.Fatal(err)
	}
	stats = unsound.OptimizeUnsoundWithoutExceptionEdges()
	fmt.Println("without exception edges:", stats)
	in2, err := unsound.Interp()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := in2.Run("f", 41); err != nil {
		fmt.Println("miscompiled f(41) goes wrong:", err)
	} else {
		fmt.Println("unexpected: the miscompiled program survived")
	}
}
