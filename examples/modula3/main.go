// Modula-3 exceptions three ways: the paper's Appendix A game program
// (Figure 7) compiled by the MiniM3 front end under all three exception
// policies — stack cutting (Figure 10), run-time unwinding (Figures
// 8/9), and native-code unwinding via alternate returns — and executed
// on the simulated machine. All three compute the same answers with
// different cost profiles, which this example prints.
package main

import (
	"fmt"
	"log"
	"strings"

	"cmm/internal/minim3"
)

// The Figure 7 game, in MiniM3: TryAMove makes a move and handles
// BadMove and NoMoreTiles.
const game = `
var next;
var movesTried;

exception BadMove;
exception NoMoreTiles;

proc getMove(which) {
    if which % 13 == 1 { raise BadMove(which); }
    if which % 13 == 2 { raise NoMoreTiles; }
    return which * 2;
}

proc makeMove(m) {
    return m + 1;
}

proc tryAMove(which) {
    try {
        makeMove(getMove(which));
        next = (next + 1) % 4;
    } except BadMove(why) {
        next = 1000 + why;
    } except NoMoreTiles {
        next = 2000;
    }
    movesTried = movesTried + 1;
    return next;
}

proc playGame(rounds) {
    var i;
    var acc;
    i = 0;
    acc = 0;
    while i < rounds {
        acc = acc + tryAMove(i);
        i = i + 1;
    }
    return acc;
}
`

func main() {
	fmt.Println("One source program, three exception implementations (§2's design space):")
	fmt.Println()
	for _, policy := range minim3.Policies {
		r, err := minim3.NewRunner(game, policy, minim3.BackendVM)
		if err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		status, value, err := r.Call("playGame", 100)
		if err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		s := r.Stats()
		fmt.Printf("policy %-14s -> status=%d result=%-8d cycles=%-8d instrs=%-8d yields=%d\n",
			policy, status, value, s.Cycles, s.Instrs, s.Yields)
	}

	fmt.Println()
	fmt.Println("The same front end emits different C-- for each policy.")
	fmt.Println("Stack cutting (Figure 10 shape) compiles tryAMove to:")
	out, err := minim3.Compile(game, minim3.PolicyCutting)
	if err != nil {
		log.Fatal(err)
	}
	printProc(out, "tryAMove")
	fmt.Println("Run-time unwinding (Figure 8 shape) compiles it to:")
	out, err = minim3.Compile(game, minim3.PolicyUnwinding)
	if err != nil {
		log.Fatal(err)
	}
	printProc(out, "tryAMove")
}

// printProc extracts one procedure from generated C-- source.
func printProc(src, name string) {
	printing := false
	depth := 0
	for _, line := range strings.Split(src, "\n") {
		if !printing && strings.HasPrefix(line, name+"(") {
			printing = true
		}
		if !printing {
			continue
		}
		fmt.Println(line)
		depth += strings.Count(line, "{") - strings.Count(line, "}")
		if depth == 0 && strings.Contains(line, "}") {
			fmt.Println()
			return
		}
	}
}
