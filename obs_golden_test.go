package cmm_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cmm"
	"cmm/internal/obs"
	"cmm/internal/paper"
)

var updateGolden = flag.Bool("update", false, "rewrite the observability golden files under testdata/obs")

// obsMechanism is one Figure 2 design-space point, the same set
// cmd/cmmbench measures: each exception mechanism leaves a distinct,
// deterministic event stream, and these tests pin it byte-for-byte.
type obsMechanism struct {
	name       string
	src        string
	dispatcher cmm.Dispatcher
}

func obsMechanisms() []obsMechanism {
	return []obsMechanism{
		{"cut", paper.Fig2Cut, nil},
		{"runtime-cut", paper.Fig2RuntimeCut, cmm.NewRegisterDispatcher("handler")},
		{"runtime-unwind", paper.Fig2RuntimeUnwind, cmm.NewUnwindDispatcher()},
		{"native-unwind", paper.Fig2NativeUnwind, nil},
		{"cps", paper.Fig2CPS, nil},
	}
}

// observeMechanism runs f(depth) under mech with a fresh observer on the
// given engine and returns the observer.
func observeMechanism(t *testing.T, mech obsMechanism, engine cmm.Engine, depth uint64) *cmm.Observer {
	t.Helper()
	mod, err := cmm.Load(mech.src)
	if err != nil {
		t.Fatalf("%s: %v", mech.name, err)
	}
	o := cmm.NewObserver()
	opts := []cmm.RunOption{cmm.WithObserver(o), cmm.WithEngine(engine)}
	if mech.dispatcher != nil {
		opts = append(opts, cmm.WithDispatcher(mech.dispatcher))
	}
	mach, err := mod.Native(cmm.CompileConfig{}, opts...)
	if err != nil {
		t.Fatalf("%s: %v", mech.name, err)
	}
	res, err := mach.Run("f", depth)
	if err != nil {
		t.Fatalf("%s: %v", mech.name, err)
	}
	if res[0] != 42 {
		t.Fatalf("%s: got %d, want 42", mech.name, res[0])
	}
	mach.RecordObsCounters()
	return o
}

// checkGolden compares got against testdata/obs/<name>, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "obs", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestObsGolden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; rerun with -update if the change is intended\ngot:\n%s", name, got)
	}
}

// TestObsGoldenTraces pins the Chrome-trace and metrics JSON each
// mechanism produces on the depth-4 Figure 2 scenario. Runtime-only
// traces (no ObserveCompile) are fully deterministic: timestamps are
// simulated cycles, and metrics maps marshal with sorted keys. The
// native engine must reproduce the SAME golden bytes as the fast engine
// — the goldens are engine-independent by construction (the -update
// flag rewrites from the fast engine only).
func TestObsGoldenTraces(t *testing.T) {
	for _, mech := range obsMechanisms() {
		t.Run(mech.name, func(t *testing.T) {
			for _, eng := range []struct {
				name string
				e    cmm.Engine
			}{{"fast", cmm.EngineFast}, {"native", cmm.EngineNative}} {
				if *updateGolden && eng.name != "fast" {
					continue
				}
				o := observeMechanism(t, mech, eng.e, 4)

				var trace bytes.Buffer
				if err := o.WriteChromeTrace(&trace); err != nil {
					t.Fatal(err)
				}
				checkGolden(t, mech.name+".trace.json", trace.Bytes())

				metrics, err := o.Metrics().JSON()
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, mech.name+".metrics.json", metrics)
			}
		})
	}
}

// TestObsMechanismSignatures checks the per-mechanism telemetry shape
// the paper predicts, independent of golden bytes: cutting dispatches in
// constant time (one cut, no walk), run-time unwinding walks the stack
// (unwind steps ≈ depth), native unwinding returns through every frame,
// and CPS raises with no exceptional events at all.
func TestObsMechanismSignatures(t *testing.T) {
	const depth = 8
	counters := map[string]map[string]int64{}
	for _, mech := range obsMechanisms() {
		o := observeMechanism(t, mech, cmm.EngineFast, depth)
		counters[mech.name] = o.Metrics().Counters
	}
	if c := counters["cut"]; c["cuts"] != 1 || c["unwind_steps"] != 0 {
		t.Errorf("cut: want one cut and no walk, got cuts=%d unwind_steps=%d", c["cuts"], c["unwind_steps"])
	}
	if c := counters["runtime-cut"]; c["resume_cut"] != 1 || c["dispatch_register"] != 1 || c["unwind_steps"] != 0 {
		t.Errorf("runtime-cut: want one register dispatch resuming by cut, got %v", c)
	}
	if c := counters["runtime-unwind"]; c["dispatch_unwind"] != 1 || c["unwind_steps"] < depth {
		t.Errorf("runtime-unwind: want a dispatch walking ≥%d activations, got dispatch_unwind=%d unwind_steps=%d",
			depth, c["dispatch_unwind"], c["unwind_steps"])
	}
	if c := counters["native-unwind"]; c["alt_returns"] < depth {
		t.Errorf("native-unwind: want ≥%d alternate returns, got %d", depth, c["alt_returns"])
	}
	if c := counters["cps"]; c["cuts"]+c["alt_returns"]+c["unwind_steps"]+c["dispatches"] != 0 {
		t.Errorf("cps: want no exceptional events, got %v", c)
	}
}

// TestObsEngineEventParityRoot extends the engine-parity contract to the
// dispatcher-driven paths only reachable through the public API: every
// engine must emit identical event streams under every mechanism.
func TestObsEngineEventParityRoot(t *testing.T) {
	engines := []struct {
		name string
		e    cmm.Engine
	}{{"fast", cmm.EngineFast}, {"native", cmm.EngineNative}}
	for _, mech := range obsMechanisms() {
		for _, depth := range []uint64{0, 4, 32} {
			ref := observeMechanism(t, mech, cmm.EngineRef, depth)
			for _, eng := range engines {
				got := observeMechanism(t, mech, eng.e, depth)
				label := fmt.Sprintf("%s depth=%d %s", mech.name, depth, eng.name)
				if len(ref.Trace) != len(got.Trace) {
					t.Errorf("%s: event count differs: ref %d, %s %d", label, len(ref.Trace), eng.name, len(got.Trace))
					continue
				}
				for i := range ref.Trace {
					if ref.Trace[i] != got.Trace[i] {
						t.Errorf("%s: event %d differs\nref:   %+v\nother: %+v", label, i, ref.Trace[i], got.Trace[i])
						break
					}
				}
			}
		}
	}
}

// TestObsInterpMatchesSemantics: the §5 interpreter exposes the same
// observer surface; it has no cycle model, but its event kinds and
// payloads for the exceptional path must agree with the machine's.
func TestObsInterpCoverage(t *testing.T) {
	mod, err := cmm.Load(paper.Fig2RuntimeUnwind)
	if err != nil {
		t.Fatal(err)
	}
	o := cmm.NewObserver()
	in, err := mod.Interp(cmm.WithObserver(o), cmm.WithDispatcher(cmm.NewUnwindDispatcher()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run("f", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Fatalf("got %d, want 42", res[0])
	}
	if o.Count(obs.KUnwindStep) < 4 {
		t.Errorf("interp recorded %d unwind steps, want ≥4", o.Count(obs.KUnwindStep))
	}
	if o.Count(obs.KResumeUnwind) != 1 {
		t.Errorf("interp recorded %d resume-unwind events, want 1", o.Count(obs.KResumeUnwind))
	}
	if o.DispatchCount(obs.MechUnwind) != 1 {
		t.Errorf("interp recorded %d unwind dispatches, want 1", o.DispatchCount(obs.MechUnwind))
	}
}

// TestObsNativeTelemetryGolden pins the metrics JSON that carries the
// opt-in engine section: a native-engine run of the Figure 1 counted
// workload (sp3) with RecordEngineTelemetry called. The telemetry is
// deterministic — kernel iteration counts included — so the whole
// export is golden-stable byte for byte.
func TestObsNativeTelemetryGolden(t *testing.T) {
	mod, err := cmm.Load(paper.Figure1)
	if err != nil {
		t.Fatal(err)
	}
	o := cmm.NewObserver()
	mach, err := mod.Native(cmm.CompileConfig{}, cmm.WithObserver(o), cmm.WithEngine(cmm.EngineNative))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run("sp3", 10); err != nil {
		t.Fatal(err)
	}
	mach.RecordObsCounters()
	mach.RecordEngineTelemetry()
	metrics, err := o.Metrics().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "native-telemetry.metrics.json", metrics)
	if !bytes.Contains(metrics, []byte(`"engine_name": "native"`)) &&
		!bytes.Contains(metrics, []byte(`"engine_name":"native"`)) {
		t.Errorf("metrics JSON lacks the engine section:\n%s", metrics)
	}
}
